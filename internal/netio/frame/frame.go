// Package frame is the wire codec of the distributed runtime
// (internal/dist): length-prefixed binary frames carrying the round-barrier
// protocol between the coordinator and its actor nodes. A frame is a uvarint
// payload length followed by the payload — one kind byte, then the kind's
// fields as varints — so the codec works unchanged over any byte stream:
// in-memory pipes, a child process's stdin/stdout, or TCP.
//
// The codec lives in its own package (rather than package netio proper)
// because netio's exporters import internal/core, which sits above the
// broadcast layer that hosts the distributed runtime; the frame wire format
// only needs graph and radio types.
//
// Decoding is strict and total: it never panics on arbitrary bytes, rejects
// unknown kinds, non-boolean booleans, invalid action kinds, oversized
// lengths and trailing payload bytes, and is a byte-fixpoint — re-encoding a
// decoded frame reproduces the canonical encoding (FuzzFrameDecode holds
// both properties under fuzzing).
package frame

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Kind discriminates the round-barrier protocol's frame types.
type Kind uint8

const (
	// KindHello is the node's first frame: it introduces its node ID and
	// its program's initial Done bit (the coordinator seeds the quiescence
	// counter from it, like the kernel polls Done before round 1).
	KindHello Kind = 1 + iota
	// KindAct asks the node for its action in a round; Round is the node's
	// local (skewed) round number, so hosts stay skew-ignorant.
	KindAct
	// KindAction answers KindAct with the program's choice.
	KindAction
	// KindFinish closes the node's round: an optional delivery
	// (HasMsg/Msg), after which the node reports back its Done bit.
	KindFinish
	// KindStatus answers KindFinish with the program's Done bit.
	KindStatus
	// KindHalt tells the node the run is over; the node exits its serve
	// loop.
	KindHalt
)

// String names the frame kind for errors and logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindAct:
		return "act"
	case KindAction:
		return "action"
	case KindFinish:
		return "finish"
	case KindStatus:
		return "status"
	case KindHalt:
		return "halt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is one protocol message. Which fields are meaningful depends on
// Kind (see the kind constants); the codec encodes exactly the meaningful
// ones, and decoding leaves the rest zero.
type Frame struct {
	Kind   Kind
	Node   graph.NodeID  // Hello: the node introducing itself
	Round  int           // Act/Action/Finish/Status: the node-local round
	Done   bool          // Hello/Status: the program's Done() bit
	HasMsg bool          // Finish: a delivery rides along in Msg
	Action radio.Action  // Action: the program's choice for the round
	Msg    radio.Message // Finish: the delivered message
}

// MaxPayload bounds a frame's payload size. Real frames are a few dozen
// bytes; the bound keeps a corrupt or hostile length prefix from turning
// into an unbounded allocation.
const MaxPayload = 4096

var (
	errTooLarge = errors.New("frame: payload length exceeds MaxPayload")
	errTrailing = errors.New("frame: trailing bytes after payload fields")
	errShort    = errors.New("frame: payload truncated")
)

func appendInt(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendMsg(dst []byte, m *radio.Message) []byte {
	dst = appendInt(dst, int64(m.Seq))
	dst = appendInt(dst, int64(m.Src))
	dst = appendInt(dst, int64(m.From))
	dst = appendInt(dst, int64(m.Dst))
	dst = appendInt(dst, int64(m.Slot))
	dst = appendInt(dst, int64(m.Depth))
	dst = appendInt(dst, int64(m.MaxSlot))
	dst = appendInt(dst, int64(m.Height))
	dst = appendInt(dst, int64(m.Group))
	return appendInt(dst, m.Value)
}

// appendPayload encodes f's kind byte and fields (without the length
// prefix).
func appendPayload(dst []byte, f *Frame) []byte {
	dst = append(dst, byte(f.Kind))
	switch f.Kind {
	case KindHello:
		dst = appendInt(dst, int64(f.Node))
		dst = appendBool(dst, f.Done)
	case KindAct:
		dst = appendInt(dst, int64(f.Round))
	case KindAction:
		dst = appendInt(dst, int64(f.Round))
		dst = append(dst, byte(f.Action.Kind))
		dst = appendInt(dst, int64(f.Action.Channel))
		if f.Action.Kind == radio.Transmit {
			dst = appendMsg(dst, &f.Action.Msg)
		}
	case KindFinish:
		dst = appendInt(dst, int64(f.Round))
		dst = appendBool(dst, f.HasMsg)
		if f.HasMsg {
			dst = appendMsg(dst, &f.Msg)
		}
	case KindStatus:
		dst = appendInt(dst, int64(f.Round))
		dst = appendBool(dst, f.Done)
	case KindHalt:
	}
	return dst
}

// Append appends f's full wire encoding — uvarint payload length, then the
// payload — to dst and returns the extended slice.
func Append(dst []byte, f *Frame) []byte {
	var scratch [64]byte
	payload := appendPayload(scratch[:0], f)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// payloadReader parses varint fields out of a payload slice.
type payloadReader struct {
	b []byte
}

func (p *payloadReader) int() (int64, error) {
	v, n := binary.Varint(p.b)
	if n <= 0 {
		return 0, errShort
	}
	p.b = p.b[n:]
	return v, nil
}

func (p *payloadReader) byte() (byte, error) {
	if len(p.b) == 0 {
		return 0, errShort
	}
	c := p.b[0]
	p.b = p.b[1:]
	return c, nil
}

func (p *payloadReader) bool() (bool, error) {
	c, err := p.byte()
	if err != nil {
		return false, err
	}
	switch c {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("frame: boolean byte %d", c)
}

func (p *payloadReader) msg(m *radio.Message) error {
	var err error
	get := func(dst *int) bool {
		var v int64
		if v, err = p.int(); err != nil {
			return false
		}
		*dst = int(v)
		return true
	}
	getID := func(dst *graph.NodeID) bool {
		var v int64
		if v, err = p.int(); err != nil {
			return false
		}
		*dst = graph.NodeID(v)
		return true
	}
	if !get(&m.Seq) || !getID(&m.Src) || !getID(&m.From) || !getID(&m.Dst) ||
		!get(&m.Slot) || !get(&m.Depth) || !get(&m.MaxSlot) || !get(&m.Height) ||
		!get(&m.Group) {
		return err
	}
	m.Value, err = p.int()
	return err
}

// Parse decodes one payload (the bytes after the length prefix) into f,
// which is fully overwritten. Unknown kinds, malformed fields and trailing
// bytes are errors.
func Parse(payload []byte, f *Frame) error {
	*f = Frame{}
	p := payloadReader{b: payload}
	k, err := p.byte()
	if err != nil {
		return err
	}
	f.Kind = Kind(k)
	switch f.Kind {
	case KindHello:
		var v int64
		if v, err = p.int(); err != nil {
			return err
		}
		f.Node = graph.NodeID(v)
		if f.Done, err = p.bool(); err != nil {
			return err
		}
	case KindAct:
		var v int64
		if v, err = p.int(); err != nil {
			return err
		}
		f.Round = int(v)
	case KindAction:
		var v int64
		if v, err = p.int(); err != nil {
			return err
		}
		f.Round = int(v)
		var ak byte
		if ak, err = p.byte(); err != nil {
			return err
		}
		switch radio.ActionKind(ak) {
		case radio.Sleep, radio.Listen, radio.Transmit:
			f.Action.Kind = radio.ActionKind(ak)
		default:
			return fmt.Errorf("frame: invalid action kind %d", ak)
		}
		if v, err = p.int(); err != nil {
			return err
		}
		f.Action.Channel = radio.Channel(v)
		if f.Action.Kind == radio.Transmit {
			if err = p.msg(&f.Action.Msg); err != nil {
				return err
			}
		}
	case KindFinish:
		var v int64
		if v, err = p.int(); err != nil {
			return err
		}
		f.Round = int(v)
		if f.HasMsg, err = p.bool(); err != nil {
			return err
		}
		if f.HasMsg {
			if err = p.msg(&f.Msg); err != nil {
				return err
			}
		}
	case KindStatus:
		var v int64
		if v, err = p.int(); err != nil {
			return err
		}
		f.Round = int(v)
		if f.Done, err = p.bool(); err != nil {
			return err
		}
	case KindHalt:
	default:
		return fmt.Errorf("frame: unknown kind %d", k)
	}
	if len(p.b) != 0 {
		return errTrailing
	}
	return nil
}

// Encoder writes frames to a stream, one Write call per frame so a frame is
// never split across writes on pipe-like transports.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one frame.
func (e *Encoder) Encode(f *Frame) error {
	e.buf = Append(e.buf[:0], f)
	_, err := e.w.Write(e.buf)
	return err
}

// Decoder reads frames from a stream.
type Decoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewDecoder wraps r (buffering it if it is not already a *bufio.Reader).
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{r: br}
}

// Decode reads one frame into f. It returns io.EOF only on a clean frame
// boundary; a stream that ends mid-frame is io.ErrUnexpectedEOF.
func (d *Decoder) Decode(f *Frame) error {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("frame: reading length: %w", err)
	}
	if n > MaxPayload {
		return errTooLarge
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("frame: reading payload: %w", err)
	}
	return Parse(d.buf, f)
}
