package netio

import (
	"bytes"
	"testing"

	"dynsens/internal/core"
	"dynsens/internal/workload"
)

// FuzzNetioRead feeds arbitrary bytes to the JSON reader: it must never
// panic, and whenever it accepts an input, re-serializing the parsed
// network and reading that back must produce byte-identical output
// (Write∘Read is a fixpoint on everything Read accepts). Seeds include a
// real exported network so the corpus starts inside the format.
func FuzzNetioRead(f *testing.F) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(1, 8, 30))
	if err != nil {
		f.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		f.Fatal(err)
	}
	nw, err := Export(net, d)
	if err != nil {
		f.Fatal(err)
	}
	var real bytes.Buffer
	if err := nw.Write(&real); err != nil {
		f.Fatal(err)
	}
	f.Add(real.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"n":0,"side":0,"seed":0,"root":0,"nodes":null,"edges":null}`))
	f.Add([]byte(`{"nodes":[{"id":1,"x":0.5,"y":1.5,"status":"head"}],"edges":[[1,2]]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"edges":[[0]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only panics are bugs
		}
		var out1 bytes.Buffer
		if err := n1.Write(&out1); err != nil {
			t.Fatalf("write of accepted input failed: %v", err)
		}
		n2, err := Read(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("reread of own output failed: %v\noutput:\n%s", err, out1.String())
		}
		var out2 bytes.Buffer
		if err := n2.Write(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("write/read round-trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
				out1.String(), out2.String())
		}
		// The graph reconstruction must not panic either; errors are fine
		// (dangling edges are representable in JSON).
		_, _ = n1.Graph()
	})
}
