package netio

import (
	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/flight"
	"dynsens/internal/timeslot"
)

// RecordTopology writes the network's current structural state — every
// node's role, tree parent, depth and time-slots, plus all G-edges — into
// a flight recording. Call it after construction/churn and before the
// protocol run so the offline verifier can re-check Definition 1/2 and
// Lemma 2/3 against exactly the structure the schedule was built on.
func RecordTopology(w *flight.Writer, net *core.Network) {
	tr := net.CNet().Tree()
	depth := tr.DepthMap()
	slots := net.Slots()
	for _, id := range tr.Nodes() {
		st, _ := net.CNet().Status(id)
		role := byte(flight.RoleMember)
		switch st {
		case cnet.Head:
			role = flight.RoleHead
		case cnet.Gateway:
			role = flight.RoleGateway
		}
		parent := flight.NoParent
		if p, ok := tr.Parent(id); ok {
			parent = p
		}
		n := flight.NodeInfo{ID: id, Role: role, Parent: parent, Depth: depth[id]}
		if s, ok := slots.Slot(timeslot.B, id); ok {
			n.BSlot = s
		}
		if s, ok := slots.Slot(timeslot.L, id); ok {
			n.LSlot = s
		}
		if s, ok := slots.Slot(timeslot.U, id); ok {
			n.USlot = s
		}
		w.WriteNode(n)
	}
	g := net.Graph()
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u < v {
				w.WriteEdge(u, v)
			}
		}
	}
}
