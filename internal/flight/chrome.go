package flight

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dynsens/internal/radio"
)

// usPerRound scales rounds to trace-event microseconds: one round renders
// as a 1 ms slice, wide enough to read in the Perfetto UI.
const usPerRound = 1000

// WriteChromeTrace exports the recording as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing): one track per node (named
// with its cluster role), a phases track on tid 0 carrying the protocol
// phase markers as slices, tx/rx/collision/loss events as 1-round slices
// on their node's track, and failures as instant events. Output is
// deterministic: metadata sorted by node ID, then phases, then events in
// stream order.
func WriteChromeTrace(w io.Writer, rec *Recording) error {
	bw := bufio.NewWriter(w)
	first := true
	// bufio latches the first write error; the final Flush reports it, so
	// per-write errors are deliberately discarded here.
	emit := func(format string, args ...any) {
		if first {
			_, _ = bw.WriteString("[\n")
			first = false
		} else {
			_, _ = bw.WriteString(",\n")
		}
		_, _ = fmt.Fprintf(bw, format, args...)
	}
	ts := func(round int) int { return (round - 1) * usPerRound }

	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"dynsens %s n=%d seed=%d"}}`,
		jsonEscape(rec.Header.Protocol), rec.Header.N, rec.Header.Seed)
	emit(`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"phases"}}`)

	nodes := make([]NodeInfo, len(rec.Nodes))
	copy(nodes, rec.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"node %d (%s) depth=%d"}}`,
			int64(n.ID)+1, n.ID, RoleName(n.Role), n.Depth)
	}

	for _, p := range rec.Phases {
		emit(`{"name":"%s","ph":"X","pid":0,"tid":0,"ts":%d,"dur":%d,"cat":"phase"}`,
			jsonEscape(p.Name), ts(p.Lo), (p.Hi-p.Lo+1)*usPerRound)
	}

	for _, ev := range rec.Events {
		t := int64(ev.Node) + 1
		switch ev.Kind {
		case radio.EvTransmit:
			emit(`{"name":"tx","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"cat":"radio","args":{"seq":%d,"round":%d,"ch":%d,"slot":%d,"depth":%d,"msg":%d}}`,
				t, ts(ev.Round), usPerRound, ev.Seq, ev.Round, ev.Channel, ev.Msg.Slot, ev.Msg.Depth, ev.Msg.Seq)
		case radio.EvDeliver:
			emit(`{"name":"rx<-%d","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"cat":"radio","args":{"seq":%d,"round":%d,"ch":%d,"from":%d,"msg":%d}}`,
				ev.Peer, t, ts(ev.Round), usPerRound, ev.Seq, ev.Round, ev.Channel, ev.Peer, ev.Msg.Seq)
		case radio.EvCollision:
			emit(`{"name":"collision","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"cat":"radio","args":{"seq":%d,"round":%d,"ch":%d}}`,
				t, ts(ev.Round), usPerRound, ev.Seq, ev.Round, ev.Channel)
		case radio.EvLoss:
			emit(`{"name":"loss<-%d","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"cat":"radio","args":{"seq":%d,"round":%d,"ch":%d,"from":%d}}`,
				ev.Peer, t, ts(ev.Round), usPerRound, ev.Seq, ev.Round, ev.Channel, ev.Peer)
		case radio.EvNodeFail:
			emit(`{"name":"node-fail","ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","cat":"failure","args":{"seq":%d,"round":%d}}`,
				t, ts(ev.Round), ev.Seq, ev.Round)
		case radio.EvLinkFail:
			emit(`{"name":"link-fail %d-%d","ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","cat":"failure","args":{"seq":%d,"round":%d,"peer":%d}}`,
				ev.Node, ev.Peer, t, ts(ev.Round), ev.Seq, ev.Round, ev.Peer)
		default:
			emit(`{"name":"%s","ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","args":{"seq":%d,"round":%d}}`,
				jsonEscape(ev.Kind.String()), t, ts(ev.Round), ev.Seq, ev.Round)
		}
	}
	if first {
		_, _ = bw.WriteString("[\n")
	}
	_, _ = bw.WriteString("\n]\n")
	return bw.Flush()
}

// jsonEscape escapes the characters that could break a JSON string; the
// inputs are protocol and phase names, so backslashes, quotes and control
// characters are the only hazards.
func jsonEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c < 0x20:
			out = append(out, fmt.Sprintf("\\u%04x", c)...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
