package flight

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// magic opens every recording file.
var magic = [4]byte{'D', 'S', 'F', 'R'}

// Record type bytes.
const (
	recHeader byte = 1
	recNode   byte = 2
	recEdge   byte = 3
	recDelta  byte = 4
	recPhase  byte = 5
	recEvent  byte = 6
	recFooter byte = 7
)

// --- primitive appenders ----------------------------------------------------

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func putVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putID(dst []byte, id graph.NodeID) []byte { return putVarint(dst, int64(id)) }

// putRecord frames one record: type byte, payload length, payload.
func putRecord(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = putUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// --- per-record encoders ----------------------------------------------------

func encodeHeader(h Header) []byte {
	var p []byte
	p = putUvarint(p, uint64(h.Version))
	p = putVarint(p, h.Seed)
	p = putUvarint(p, uint64(h.N))
	p = putUvarint(p, uint64(h.Side))
	p = putUvarint(p, uint64(h.Channels))
	p = putID(p, h.Source)
	p = putString(p, h.Protocol)
	p = putUvarint(p, math.Float64bits(h.LossRate))
	p = putVarint(p, h.LossSeed)
	p = putUvarint(p, uint64(h.RingLimit))
	// RNGScheme joined the header in version 2; version 1 recordings must
	// re-encode to their original bytes, so the field is version-gated.
	if h.Version >= 2 {
		p = putString(p, h.RNGScheme)
	}
	return p
}

func encodeNode(n NodeInfo) []byte {
	var p []byte
	p = putID(p, n.ID)
	p = append(p, n.Role)
	p = putID(p, n.Parent)
	p = putUvarint(p, uint64(n.Depth))
	p = putUvarint(p, uint64(n.BSlot))
	p = putUvarint(p, uint64(n.LSlot))
	p = putUvarint(p, uint64(n.USlot))
	return p
}

func encodeEdge(e Edge) []byte {
	var p []byte
	p = putID(p, e.U)
	return putID(p, e.V)
}

func encodeDelta(d Delta) []byte {
	var p []byte
	p = append(p, byte(d.Kind))
	p = putID(p, d.Node)
	p = putID(p, d.Peer)
	p = putUvarint(p, uint64(d.Round))
	flags := byte(0)
	if d.RootChanged {
		flags = 1
	}
	p = append(p, flags)
	p = putUvarint(p, uint64(len(d.Reinserted)))
	for _, id := range d.Reinserted {
		p = putID(p, id)
	}
	p = putUvarint(p, uint64(len(d.Dropped)))
	for _, id := range d.Dropped {
		p = putID(p, id)
	}
	return p
}

func encodePhase(ph Phase) []byte {
	var p []byte
	p = putString(p, ph.Name)
	p = putUvarint(p, uint64(ph.Lo))
	p = putUvarint(p, uint64(ph.Hi))
	return p
}

func encodeEvent(ev radio.Event) []byte {
	var p []byte
	p = putUvarint(p, ev.Seq)
	p = putUvarint(p, uint64(ev.Round))
	p = append(p, byte(ev.Kind))
	p = putID(p, ev.Node)
	p = putID(p, ev.Peer)
	p = putUvarint(p, uint64(ev.Channel))
	m := ev.Msg
	p = putVarint(p, int64(m.Seq))
	p = putID(p, m.Src)
	p = putID(p, m.From)
	p = putID(p, m.Dst)
	p = putVarint(p, int64(m.Slot))
	p = putVarint(p, int64(m.Depth))
	p = putVarint(p, int64(m.MaxSlot))
	p = putVarint(p, int64(m.Height))
	p = putVarint(p, int64(m.Group))
	p = putVarint(p, m.Value)
	return p
}

func encodeFooter(f Footer) []byte {
	var p []byte
	p = putUvarint(p, uint64(f.ScheduleLen))
	p = putUvarint(p, uint64(f.Rounds))
	p = putUvarint(p, uint64(f.Deliveries))
	p = putUvarint(p, uint64(f.Collisions))
	p = putUvarint(p, uint64(f.Transmissions))
	p = putUvarint(p, uint64(f.Losses))
	p = putUvarint(p, uint64(f.Received))
	p = putUvarint(p, uint64(f.Audience))
	p = putUvarint(p, uint64(f.CompletionRound))
	p = putUvarint(p, uint64(f.DroppedEvents))
	return p
}

// Encode writes the recording in canonical section order (header, nodes,
// edges, deltas, phases, events, footer). Decode∘Encode is the identity on
// recordings, and Encode∘Decode is a byte fixpoint on its own output.
func (r *Recording) Encode(w io.Writer) error {
	var out []byte
	out = append(out, magic[:]...)
	out = putRecord(out, recHeader, encodeHeader(r.Header))
	for i := range r.Nodes {
		out = putRecord(out, recNode, encodeNode(r.Nodes[i]))
	}
	for _, e := range r.Edges {
		out = putRecord(out, recEdge, encodeEdge(e))
	}
	for i := range r.Deltas {
		out = putRecord(out, recDelta, encodeDelta(r.Deltas[i]))
	}
	for i := range r.Phases {
		out = putRecord(out, recPhase, encodePhase(r.Phases[i]))
	}
	for i := range r.Events {
		out = putRecord(out, recEvent, encodeEvent(r.Events[i]))
	}
	if r.Footer != nil {
		out = putRecord(out, recFooter, encodeFooter(*r.Footer))
	}
	_, err := w.Write(out)
	return err
}

// --- Writer -----------------------------------------------------------------

// Writer builds a recording incrementally. Records are buffered per
// section and written in canonical order on Close, which lets the event
// section operate as a bounded ring for long soak runs: when the ring is
// full, the oldest event is evicted and counted in the footer's
// DroppedEvents. A Writer is for a single run and is not safe for
// concurrent use (the radio engine's trace hook is single-threaded).
type Writer struct {
	dst io.Writer

	header    *Header
	nodes     []byte
	edges     []byte
	deltas    []byte
	phases    []byte
	events    [][]byte
	ringCap   int
	ringStart int
	dropped   int
	footer    *Footer
	closed    bool
}

// NewWriter creates an unbounded writer emitting to w on Close.
func NewWriter(w io.Writer) *Writer { return &Writer{dst: w} }

// NewRingWriter creates a writer that keeps only the last ringCap radio
// events (everything else — topology, deltas, phases — is kept in full).
func NewRingWriter(w io.Writer, ringCap int) *Writer {
	if ringCap < 1 {
		ringCap = 1
	}
	return &Writer{dst: w, ringCap: ringCap}
}

// WriteHeader records the run header; it must be called exactly once.
// Unset fields get the current defaults: format Version and — for v2+
// headers — the counter-stream RNG scheme, the only scheme current engines
// produce.
func (w *Writer) WriteHeader(h Header) {
	if h.Version == 0 {
		h.Version = Version
	}
	if h.Version >= 2 && h.RNGScheme == "" {
		h.RNGScheme = RNGSchemeCounter
	}
	if w.ringCap > 0 {
		h.RingLimit = w.ringCap
	}
	w.header = &h
}

// WriteNode records one node's structural state.
func (w *Writer) WriteNode(n NodeInfo) {
	w.nodes = putRecord(w.nodes, recNode, encodeNode(n))
}

// WriteEdge records one G-edge.
func (w *Writer) WriteEdge(u, v graph.NodeID) {
	w.edges = putRecord(w.edges, recEdge, encodeEdge(Edge{U: u, V: v}))
}

// WriteDelta records one topology/churn delta.
func (w *Writer) WriteDelta(d Delta) {
	w.deltas = putRecord(w.deltas, recDelta, encodeDelta(d))
}

// WritePhase records one protocol phase marker.
func (w *Writer) WritePhase(p Phase) {
	w.phases = putRecord(w.phases, recPhase, encodePhase(p))
}

// WriteEvent records one radio event, evicting the oldest when the ring
// is full.
func (w *Writer) WriteEvent(ev radio.Event) {
	rec := putRecord(nil, recEvent, encodeEvent(ev))
	if w.ringCap > 0 && len(w.events) == w.ringCap {
		w.events[w.ringStart] = rec
		w.ringStart = (w.ringStart + 1) % w.ringCap
		w.dropped++
		return
	}
	w.events = append(w.events, rec)
}

// Hook returns the callback to install with radio.Engine.SetTrace or
// broadcast.Options.Trace. The Writer is not goroutine-safe, but it does
// not need to be for engine hooks: the radio kernel emits all events from
// one goroutine (its serial stitch steps) at any worker count, and the
// recorded byte stream is identical at any radio.Engine.SetWorkers value.
func (w *Writer) Hook() func(radio.Event) { return w.WriteEvent }

// BatchHook returns the batched callback for radio.Engine.SetTraceBatch or
// broadcast.Options.TraceBatch: one call per shard buffer per phase per
// round. Events are encoded immediately (the engine reuses the batch
// slice), producing the same byte stream as feeding Hook every event.
func (w *Writer) BatchHook() func([]radio.Event) {
	return func(evs []radio.Event) {
		for i := range evs {
			w.WriteEvent(evs[i])
		}
	}
}

// SetFooter stages the run outcome to be written on Close. The ring drop
// count is filled in by Close.
func (w *Writer) SetFooter(f Footer) { w.footer = &f }

// Dropped returns how many events the ring has evicted so far.
func (w *Writer) Dropped() int { return w.dropped }

// Close emits the buffered recording to the destination writer in
// canonical order and closes the destination if it is an io.Closer.
// Close is idempotent; only the first call writes.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.header == nil {
		return fmt.Errorf("flight: Close before WriteHeader")
	}
	var out []byte
	out = append(out, magic[:]...)
	out = putRecord(out, recHeader, encodeHeader(*w.header))
	out = append(out, w.nodes...)
	out = append(out, w.edges...)
	out = append(out, w.deltas...)
	out = append(out, w.phases...)
	for i := 0; i < len(w.events); i++ {
		out = append(out, w.events[(w.ringStart+i)%len(w.events)]...)
	}
	if w.footer != nil {
		f := *w.footer
		f.DroppedEvents = w.dropped
		out = putRecord(out, recFooter, encodeFooter(f))
	}
	if _, err := w.dst.Write(out); err != nil {
		return fmt.Errorf("flight: write recording: %w", err)
	}
	if c, ok := w.dst.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return fmt.Errorf("flight: close recording: %w", err)
		}
	}
	return nil
}
