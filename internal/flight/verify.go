package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Check is one verifier probe: a named invariant, whether it could be
// evaluated, and the failure when it did not hold.
type Check struct {
	Name string
	// Skipped marks checks the recording does not carry enough evidence
	// for (ring truncation, missing footer, injected churn); Detail says
	// why, or what was measured on success.
	Skipped bool
	Detail  string
	Err     error
}

// Report is the outcome of an offline verification pass.
type Report struct {
	Checks []Check
}

// Passed reports whether every evaluated check held.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if c.Err != nil {
			return false
		}
	}
	return true
}

// Write renders the report, one line per check plus a verdict line.
func (r *Report) Write(w io.Writer) error {
	failed := 0
	for _, c := range r.Checks {
		var line string
		switch {
		case c.Err != nil:
			failed++
			line = fmt.Sprintf("FAIL %-20s %v", c.Name, c.Err)
		case c.Skipped:
			line = fmt.Sprintf("skip %-20s %s", c.Name, c.Detail)
		default:
			line = fmt.Sprintf("ok   %-20s %s", c.Name, c.Detail)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	verdict := fmt.Sprintf("verifier: PASS (%d checks)", len(r.Checks))
	if failed > 0 {
		verdict = fmt.Sprintf("verifier: FAIL (%d of %d checks)", failed, len(r.Checks))
	}
	_, err := fmt.Fprintln(w, verdict)
	return err
}

func (r *Report) add(name string, err error, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Err: err, Detail: detail})
}

func (r *Report) skip(name, why string) {
	r.Checks = append(r.Checks, Check{Name: name, Skipped: true, Detail: why})
}

// ceilDiv is ceil(a/b) for b > 0.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Verify re-checks the paper's invariants against a recording, offline:
// the event stream is gap-free and ordered (satellite: sequence numbers),
// the recorded structure satisfies Definition 1 / Property 1, the slots
// respect the Lemma 2/3 bounds, every reception is physically consistent
// with the radio model, failure-free runs are collision-free, the run fits
// the Lemma 1 / Theorem 1 round budget for its protocol, and the footer's
// aggregates match the events they summarize.
func Verify(rec *Recording) *Report {
	rep := &Report{}
	v := &verifier{rec: rec, rep: rep}
	v.prepare()
	v.checkSequence()
	v.checkStructure()
	v.checkSlotBounds()
	v.checkPhases()
	v.checkDeliveries()
	v.checkCollisionFreedom()
	v.checkRoundBound()
	v.checkFooter()
	v.checkConstructionDeltas()
	return rep
}

type verifier struct {
	rec *Recording
	rep *Report

	nodes   map[graph.NodeID]*NodeInfo
	adj     map[graph.NodeID]map[graph.NodeID]bool
	root    graph.NodeID
	hasRoot bool
	depth   map[graph.NodeID]int // recomputed from parents

	nodeDied map[graph.NodeID]int
	linkCut  map[Edge]int
}

func (v *verifier) prepare() {
	r := v.rec
	v.nodes = make(map[graph.NodeID]*NodeInfo, len(r.Nodes))
	for i := range r.Nodes {
		v.nodes[r.Nodes[i].ID] = &r.Nodes[i]
	}
	v.adj = make(map[graph.NodeID]map[graph.NodeID]bool, len(r.Nodes))
	for id := range v.nodes {
		v.adj[id] = make(map[graph.NodeID]bool)
	}
	for _, e := range r.Edges {
		if v.adj[e.U] != nil && v.adj[e.V] != nil {
			v.adj[e.U][e.V] = true
			v.adj[e.V][e.U] = true
		}
	}
	for id, n := range v.nodes {
		if n.Parent == NoParent {
			if !v.hasRoot {
				v.root = id
				v.hasRoot = true
			}
		}
	}
	v.nodeDied = make(map[graph.NodeID]int)
	v.linkCut = make(map[Edge]int)
	for _, ev := range r.Events {
		switch ev.Kind {
		case radio.EvNodeFail:
			if _, ok := v.nodeDied[ev.Node]; !ok {
				v.nodeDied[ev.Node] = ev.Round
			}
		case radio.EvLinkFail:
			e := normEdge(ev.Node, ev.Peer)
			if _, ok := v.linkCut[e]; !ok {
				v.linkCut[e] = ev.Round
			}
		}
	}
}

func normEdge(u, vv graph.NodeID) Edge {
	if u > vv {
		u, vv = vv, u
	}
	return Edge{U: u, V: vv}
}

// clean reports whether the run was undisturbed: no injected failures, no
// loss model, no ring truncation — the preconditions of the paper's
// collision-freedom guarantee.
func (v *verifier) clean() bool {
	if v.rec.Header.LossRate != 0 || v.rec.Dropped() > 0 {
		return false
	}
	if len(v.nodeDied) > 0 || len(v.linkCut) > 0 {
		return false
	}
	for _, d := range v.rec.Deltas {
		if d.Kind == DeltaNodeFail || d.Kind == DeltaLinkFail {
			return false
		}
	}
	for _, ev := range v.rec.Events {
		if ev.Kind == radio.EvLoss {
			return false
		}
	}
	return true
}

// checkSequence verifies the satellite guarantee: event sequence numbers
// are contiguous (gap detection) and rounds never decrease, so the
// recording reproduces the exact per-round event order of the run.
func (v *verifier) checkSequence() {
	evs := v.rec.Events
	if len(evs) == 0 {
		v.rep.skip("event-sequence", "no events recorded")
		return
	}
	prev := evs[0].Seq
	prevRound := evs[0].Round
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != prev+1 {
			v.rep.add("event-sequence",
				fmt.Errorf("flight: gap: event %d has seq %d after %d", i, evs[i].Seq, prev), "")
			return
		}
		if evs[i].Round < prevRound {
			v.rep.add("event-sequence",
				fmt.Errorf("flight: round went backwards: seq %d at round %d after round %d",
					evs[i].Seq, evs[i].Round, prevRound), "")
			return
		}
		prev = evs[i].Seq
		prevRound = evs[i].Round
	}
	if v.rec.Dropped() == 0 && evs[0].Seq != 1 {
		v.rep.add("event-sequence",
			fmt.Errorf("flight: unbounded recording starts at seq %d, not 1", evs[0].Seq), "")
		return
	}
	v.rep.add("event-sequence", nil,
		fmt.Sprintf("%d events, seq %d..%d, contiguous", len(evs), evs[0].Seq, prev))
}

// checkStructure re-checks Definition 1 / Property 1 from the recorded
// roles, parents and edges (mirroring cnet.Verify, but with zero trust in
// the live structures).
func (v *verifier) checkStructure() {
	const name = "structure"
	if len(v.rec.Nodes) == 0 {
		v.rep.skip(name, "no topology recorded")
		return
	}
	if !v.hasRoot {
		v.rep.add(name, fmt.Errorf("flight: no root (node with no parent) recorded"), "")
		return
	}
	roots := 0
	for _, n := range v.nodes {
		if n.Parent == NoParent {
			roots++
		}
	}
	if roots != 1 {
		v.rep.add(name, fmt.Errorf("flight: %d roots recorded, want 1", roots), "")
		return
	}
	// Recompute depths by walking parents; detects cycles and orphans.
	v.depth = make(map[graph.NodeID]int, len(v.nodes))
	var depthOf func(id graph.NodeID, hops int) (int, error)
	depthOf = func(id graph.NodeID, hops int) (int, error) {
		if d, ok := v.depth[id]; ok {
			return d, nil
		}
		if hops > len(v.nodes) {
			return 0, fmt.Errorf("flight: parent cycle at node %d", id)
		}
		n, ok := v.nodes[id]
		if !ok {
			return 0, fmt.Errorf("flight: parent %d not recorded", id)
		}
		if n.Parent == NoParent {
			v.depth[id] = 0
			return 0, nil
		}
		pd, err := depthOf(n.Parent, hops+1)
		if err != nil {
			return 0, err
		}
		v.depth[id] = pd + 1
		return pd + 1, nil
	}
	children := make(map[graph.NodeID][]graph.NodeID)
	for id, n := range v.nodes {
		d, err := depthOf(id, 0)
		if err != nil {
			v.rep.add(name, err, "")
			return
		}
		if d != n.Depth {
			v.rep.add(name, fmt.Errorf("flight: node %d recorded depth %d, parent walk gives %d", id, n.Depth, d), "")
			return
		}
		if n.Parent != NoParent {
			if !v.adj[id][n.Parent] {
				v.rep.add(name, fmt.Errorf("flight: tree edge %d-%d is not a recorded G edge", id, n.Parent), "")
				return
			}
			children[n.Parent] = append(children[n.Parent], id)
		}
	}
	if v.nodes[v.root].Role != RoleHead {
		v.rep.add(name, fmt.Errorf("flight: root %d is %s, not a head", v.root, RoleName(v.nodes[v.root].Role)), "")
		return
	}
	for id, n := range v.nodes {
		d := v.depth[id]
		switch n.Role {
		case RoleHead:
			if d%2 != 0 {
				v.rep.add(name, fmt.Errorf("flight: head %d at odd depth %d", id, d), "")
				return
			}
			if n.Parent != NoParent && v.nodes[n.Parent].Role != RoleGateway {
				v.rep.add(name, fmt.Errorf("flight: head %d has non-gateway parent %d", id, n.Parent), "")
				return
			}
		case RoleGateway:
			if d%2 != 1 {
				v.rep.add(name, fmt.Errorf("flight: gateway %d at even depth %d", id, d), "")
				return
			}
			if n.Parent == NoParent || v.nodes[n.Parent].Role != RoleHead {
				v.rep.add(name, fmt.Errorf("flight: gateway %d parent is not a head", id), "")
				return
			}
			for _, c := range children[id] {
				if v.nodes[c].Role != RoleHead {
					v.rep.add(name, fmt.Errorf("flight: gateway %d has non-head child %d", id, c), "")
					return
				}
				if !v.adj[id][c] {
					v.rep.add(name, fmt.Errorf("flight: gateway %d not adjacent to child head %d", id, c), "")
					return
				}
			}
		case RoleMember:
			if d%2 != 1 {
				v.rep.add(name, fmt.Errorf("flight: member %d at even depth %d", id, d), "")
				return
			}
			if len(children[id]) > 0 {
				v.rep.add(name, fmt.Errorf("flight: member %d is not a leaf", id), "")
				return
			}
			if n.Parent == NoParent || v.nodes[n.Parent].Role != RoleHead {
				v.rep.add(name, fmt.Errorf("flight: member %d parent is not a head", id), "")
				return
			}
		default:
			v.rep.add(name, fmt.Errorf("flight: node %d has unknown role %q", id, n.Role), "")
			return
		}
	}
	// Property 1(2): heads are an independent set of G.
	for id, n := range v.nodes {
		if n.Role != RoleHead {
			continue
		}
		for peer := range v.adj[id] {
			if p, ok := v.nodes[peer]; ok && p.Role == RoleHead {
				v.rep.add(name, fmt.Errorf("flight: adjacent heads %d and %d", id, peer), "")
				return
			}
		}
	}
	heads, gws, members := 0, 0, 0
	for _, n := range v.nodes {
		switch n.Role {
		case RoleHead:
			heads++
		case RoleGateway:
			gws++
		case RoleMember:
			members++
		}
	}
	v.rep.add(name, nil, fmt.Sprintf("%d nodes: %d heads, %d gateways, %d members (Definition 1 holds)",
		len(v.nodes), heads, gws, members))
}

// degrees returns D (max degree of G) and d (max degree of the subgraph
// induced by the backbone node set), recomputed from the recorded edges.
func (v *verifier) degrees() (bigD, smallD int) {
	for id, peers := range v.adj {
		if len(peers) > bigD {
			bigD = len(peers)
		}
		n, ok := v.nodes[id]
		if !ok || n.Role == RoleMember {
			continue
		}
		deg := 0
		for peer := range peers {
			if p, ok := v.nodes[peer]; ok && p.Role != RoleMember {
				deg++
			}
		}
		if deg > smallD {
			smallD = deg
		}
	}
	return bigD, smallD
}

// checkSlotBounds re-checks Lemma 3 offline: no recorded b-slot exceeds
// d(d+1)/2+1 and no l-/u-slot exceeds D(D+1)/2+1, with D and d recomputed
// from the recorded edges rather than trusted.
func (v *verifier) checkSlotBounds() {
	const name = "slot-bounds"
	if len(v.rec.Nodes) == 0 {
		v.rep.skip(name, "no topology recorded")
		return
	}
	bigD, smallD := v.degrees()
	boundB := smallD*(smallD+1)/2 + 1
	boundL := bigD*(bigD+1)/2 + 1
	maxB, maxL, maxU := 0, 0, 0
	for _, n := range v.rec.Nodes {
		if n.BSlot < 0 || n.LSlot < 0 || n.USlot < 0 {
			v.rep.add(name, fmt.Errorf("flight: node %d has a negative slot", n.ID), "")
			return
		}
		if n.BSlot > maxB {
			maxB = n.BSlot
		}
		if n.LSlot > maxL {
			maxL = n.LSlot
		}
		if n.USlot > maxU {
			maxU = n.USlot
		}
	}
	if maxB > boundB {
		v.rep.add(name, fmt.Errorf("flight: max b-slot %d exceeds Lemma 3 bound d(d+1)/2+1 = %d (d=%d)", maxB, boundB, smallD), "")
		return
	}
	if maxL > boundL {
		v.rep.add(name, fmt.Errorf("flight: max l-slot %d exceeds Lemma 3 bound D(D+1)/2+1 = %d (D=%d)", maxL, boundL, bigD), "")
		return
	}
	if maxU > boundL {
		v.rep.add(name, fmt.Errorf("flight: max u-slot %d exceeds Lemma 3 bound D(D+1)/2+1 = %d (D=%d)", maxU, boundL, bigD), "")
		return
	}
	v.rep.add(name, nil, fmt.Sprintf("delta=%d<=%d Delta=%d<=%d Delta_u=%d<=%d", maxB, boundB, maxL, boundL, maxU, boundL))
}

// checkPhases verifies the recorded phase markers are ordered, and that
// every transmission falls inside a declared phase.
func (v *verifier) checkPhases() {
	const name = "phase-markers"
	phases := v.rec.Phases
	if len(phases) == 0 {
		v.rep.skip(name, "no phases recorded")
		return
	}
	prevHi := 0
	for _, p := range phases {
		if p.Lo < 1 || p.Hi < p.Lo {
			v.rep.add(name, fmt.Errorf("flight: phase %q has invalid range [%d,%d]", p.Name, p.Lo, p.Hi), "")
			return
		}
		if p.Lo <= prevHi {
			v.rep.add(name, fmt.Errorf("flight: phase %q starts at %d inside the previous phase (ends %d)", p.Name, p.Lo, prevHi), "")
			return
		}
		prevHi = p.Hi
	}
	for _, ev := range v.rec.Events {
		if ev.Kind != radio.EvTransmit {
			continue
		}
		inPhase := false
		for _, p := range phases {
			if ev.Round >= p.Lo && ev.Round <= p.Hi {
				inPhase = true
				break
			}
		}
		if !inPhase {
			v.rep.add(name, fmt.Errorf("flight: transmission by %d in round %d outside every phase", ev.Node, ev.Round), "")
			return
		}
	}
	names := make([]string, len(phases))
	for i, p := range phases {
		names[i] = fmt.Sprintf("%s[%d,%d]", p.Name, p.Lo, p.Hi)
	}
	v.rep.add(name, nil, strings.Join(names, " "))
}

// checkDeliveries replays the radio model over the event stream: a
// reception in round r on channel c is legal iff, of the transmitters the
// listener is adjacent to on that channel in that round, exactly one frame
// survived the loss model and live links — and it is the recorded peer. A
// collision event requires at least two surviving frames.
func (v *verifier) checkDeliveries() {
	const name = "delivery-consistency"
	if v.rec.Dropped() > 0 {
		v.rep.skip(name, "ring truncation dropped events")
		return
	}
	if len(v.rec.Nodes) == 0 {
		v.rep.skip(name, "no topology recorded")
		return
	}
	type rc struct {
		round int
		ch    radio.Channel
	}
	txs := make(map[rc][]graph.NodeID)
	lost := make(map[rc]map[graph.NodeID]map[graph.NodeID]bool) // listener -> transmitter
	for _, ev := range v.rec.Events {
		key := rc{ev.Round, ev.Channel}
		switch ev.Kind {
		case radio.EvTransmit:
			txs[key] = append(txs[key], ev.Node)
		case radio.EvLoss:
			if lost[key] == nil {
				lost[key] = make(map[graph.NodeID]map[graph.NodeID]bool)
			}
			if lost[key][ev.Node] == nil {
				lost[key][ev.Node] = make(map[graph.NodeID]bool)
			}
			lost[key][ev.Node][ev.Peer] = true
		}
	}
	heard := func(listener graph.NodeID, key rc) []graph.NodeID {
		var out []graph.NodeID
		for _, t := range txs[key] {
			if t == listener || !v.adj[listener][t] {
				continue
			}
			if cutAt, ok := v.linkCut[normEdge(listener, t)]; ok && key.round >= cutAt {
				continue
			}
			if lost[key][listener][t] {
				continue
			}
			out = append(out, t)
		}
		return out
	}
	rx, colls := 0, 0
	for _, ev := range v.rec.Events {
		key := rc{ev.Round, ev.Channel}
		switch ev.Kind {
		case radio.EvDeliver:
			h := heard(ev.Node, key)
			if len(h) != 1 || h[0] != ev.Peer {
				v.rep.add(name, fmt.Errorf("flight: round %d: node %d received from %d but heard %v on ch %d",
					ev.Round, ev.Node, ev.Peer, h, ev.Channel), "")
				return
			}
			if diedAt, ok := v.nodeDied[ev.Node]; ok && ev.Round >= diedAt {
				v.rep.add(name, fmt.Errorf("flight: round %d: dead node %d received", ev.Round, ev.Node), "")
				return
			}
			rx++
		case radio.EvCollision:
			if h := heard(ev.Node, key); len(h) < 2 {
				v.rep.add(name, fmt.Errorf("flight: round %d: node %d reported a collision but heard %v on ch %d",
					ev.Round, ev.Node, h, ev.Channel), "")
				return
			}
			colls++
		case radio.EvTransmit:
			if diedAt, ok := v.nodeDied[ev.Node]; ok && ev.Round >= diedAt {
				v.rep.add(name, fmt.Errorf("flight: round %d: dead node %d transmitted", ev.Round, ev.Node), "")
				return
			}
		}
	}
	v.rep.add(name, nil, fmt.Sprintf("%d receptions and %d collisions consistent with the radio model", rx, colls))
}

// checkCollisionFreedom asserts the paper's core guarantee on undisturbed
// runs: with valid time-slots and no injected failures or losses, no
// collision may block a delivery. DFO (serial) must be strictly
// collision-free; window-listening schedules tolerate benign overhears of
// transmitters outside the listener's interference set.
func (v *verifier) checkCollisionFreedom() {
	const name = "collision-freedom"
	switch strings.ToUpper(v.rec.Header.Protocol) {
	case "CFF", "ICFF", "DFO", "MULTICAST":
	default:
		// Unscheduled protocols (e.g. PFLOOD) carry no collision-freedom
		// guarantee: colliding is their expected behavior.
		v.rep.skip(name, fmt.Sprintf("protocol %q is unscheduled; no collision-freedom guarantee", v.rec.Header.Protocol))
		return
	}
	if !v.clean() {
		why := "run has injected failures or losses"
		if v.rec.Dropped() > 0 {
			why = "ring truncation dropped events"
		}
		v.rep.skip(name, why)
		return
	}
	if strings.ToUpper(v.rec.Header.Protocol) == "DFO" {
		// DFO serializes the whole broadcast (one transmitter per round),
		// so a clean run must be strictly collision-free.
		for _, ev := range v.rec.Events {
			if ev.Kind == radio.EvCollision {
				v.rep.add(name, fmt.Errorf("flight: collision at node %d in round %d on a failure-free run", ev.Node, ev.Round), "")
				return
			}
		}
		v.rep.add(name, nil, "failure-free run, zero collisions")
		return
	}
	// CFF/ICFF/MULTICAST receivers listen across a whole phase window, and
	// slot uniqueness is guaranteed only within each receiver's
	// interference set. In dense deployments a listener can be in radio
	// range of transmitters outside that set which share a slot, so it
	// overhears their collision in a foreign slot round. The guarantee is
	// that such overhears are benign: the listener's designated slot stays
	// clean and it still receives the payload.
	delivered := make(map[graph.NodeID]bool)
	for _, ev := range v.rec.Events {
		if ev.Kind == radio.EvDeliver {
			delivered[ev.Node] = true
		}
	}
	collisions := 0
	for _, ev := range v.rec.Events {
		if ev.Kind != radio.EvCollision {
			continue
		}
		collisions++
		if !delivered[ev.Node] && ev.Node != v.rec.Header.Source {
			v.rep.add(name, fmt.Errorf("flight: node %d collided in round %d and never received on a failure-free run", ev.Node, ev.Round), "")
			return
		}
	}
	if collisions == 0 {
		v.rep.add(name, nil, "failure-free run, zero collisions")
		return
	}
	v.rep.add(name, nil, fmt.Sprintf("failure-free run, %d benign overhears, none blocked delivery", collisions))
}

// checkRoundBound re-checks Lemma 1 / Theorem 1 (and the DFO 4p-2 bound)
// from the recorded slots, depths and roles: the run must not outlast its
// protocol's schedule bound, preamble included.
func (v *verifier) checkRoundBound() {
	const name = "round-bound"
	if len(v.rec.Nodes) == 0 {
		v.rep.skip(name, "no topology recorded")
		return
	}
	src, ok := v.nodes[v.rec.Header.Source]
	if !ok {
		v.rep.skip(name, fmt.Sprintf("source %d not in recorded topology", v.rec.Header.Source))
		return
	}
	k := v.rec.Header.Channels
	if k < 1 {
		k = 1
	}
	pre := src.Depth
	lastRound := v.rec.MaxRound()
	maxB, maxL, maxU, hBT, h := 0, 0, 0, 0, 0
	members := false
	heads := 0
	for _, n := range v.rec.Nodes {
		if n.BSlot > maxB {
			maxB = n.BSlot
		}
		if n.LSlot > maxL {
			maxL = n.LSlot
		}
		if n.USlot > maxU {
			maxU = n.USlot
		}
		if n.Depth > h {
			h = n.Depth
		}
		switch n.Role {
		case RoleMember:
			members = true
		case RoleHead:
			heads++
			fallthrough
		case RoleGateway:
			if n.Depth > hBT {
				hBT = n.Depth
			}
		}
	}
	var bound int
	var formula string
	switch strings.ToUpper(v.rec.Header.Protocol) {
	case "ICFF", "MULTICAST":
		bound = pre + ceilDiv(maxB, k)*hBT
		if members {
			bound += ceilDiv(maxL, k)
		}
		formula = fmt.Sprintf("pre + ceil(delta/k)*h_BT + ceil(Delta/k) = %d + %d*%d + %d",
			pre, ceilDiv(maxB, k), hBT, bound-pre-ceilDiv(maxB, k)*hBT)
	case "CFF":
		bound = pre + ceilDiv(maxU, k)*h
		formula = fmt.Sprintf("pre + ceil(Delta_u/k)*h = %d + %d*%d", pre, ceilDiv(maxU, k), h)
	case "DFO":
		bound = 4*heads - 2
		if bound < 2 {
			bound = 2
		}
		formula = fmt.Sprintf("4p-2 with p=%d", heads)
	default:
		v.rep.skip(name, fmt.Sprintf("no bound known for protocol %q", v.rec.Header.Protocol))
		return
	}
	if lastRound > bound {
		v.rep.add(name, fmt.Errorf("flight: run lasted %d rounds, exceeding the %s bound %s = %d",
			lastRound, v.rec.Header.Protocol, formula, bound), "")
		return
	}
	v.rep.add(name, nil, fmt.Sprintf("%d rounds <= %s = %d", lastRound, formula, bound))
}

// checkFooter cross-checks the footer's engine aggregates against the
// event stream, and the recorded completion against the causal trace.
func (v *verifier) checkFooter() {
	const name = "footer"
	f := v.rec.Footer
	if f == nil {
		v.rep.add(name, fmt.Errorf("flight: recording has no footer (truncated before Close?)"), "")
		return
	}
	if v.rec.Dropped() > 0 {
		v.rep.skip(name, fmt.Sprintf("ring truncation dropped %d events", v.rec.Dropped()))
		return
	}
	counts := make(map[radio.EventKind]int)
	for _, ev := range v.rec.Events {
		counts[ev.Kind]++
	}
	for _, c := range []struct {
		what      string
		got, want int
	}{
		{"deliveries", f.Deliveries, counts[radio.EvDeliver]},
		{"collisions", f.Collisions, counts[radio.EvCollision]},
		{"transmissions", f.Transmissions, counts[radio.EvTransmit]},
		{"losses", f.Losses, counts[radio.EvLoss]},
	} {
		if c.got != c.want {
			v.rep.add(name, fmt.Errorf("flight: footer says %d %s, event stream has %d", c.got, c.what, c.want), "")
			return
		}
	}
	if f.Received > f.Audience {
		v.rep.add(name, fmt.Errorf("flight: footer received %d > audience %d", f.Received, f.Audience), "")
		return
	}
	if t := v.rec.mainTrace(); t != nil && f.Audience == len(v.rec.Nodes) && len(v.rec.Nodes) > 0 {
		holders := t.Holders()
		completion := 0
		for id := range holders {
			if rd, ok := t.DeliveredRound(id); ok && rd > completion {
				completion = rd
			}
		}
		if len(holders) != f.Received {
			v.rep.add(name, fmt.Errorf("flight: footer says %d of %d nodes received, causal trace reaches %d",
				f.Received, f.Audience, len(holders)), "")
			return
		}
		if completion != f.CompletionRound {
			v.rep.add(name, fmt.Errorf("flight: footer completion round %d, causal trace completes in %d",
				f.CompletionRound, completion), "")
			return
		}
	}
	v.rep.add(name, nil, fmt.Sprintf("aggregates match %d events (delivered %d/%d, completion r%d)",
		len(v.rec.Events), f.Received, f.Audience, f.CompletionRound))
}

// checkConstructionDeltas verifies that, on a churn-free recording, the
// construction trace accounts for every node: N-1 move-ins besides the
// root (Section 5's add-nodes-one-by-one construction).
func (v *verifier) checkConstructionDeltas() {
	const name = "construction-deltas"
	if len(v.rec.Deltas) == 0 {
		v.rep.skip(name, "no deltas recorded")
		return
	}
	onlyMoveIns := true
	movedIn := make(map[graph.NodeID]bool)
	for _, d := range v.rec.Deltas {
		switch d.Kind {
		case DeltaMoveIn:
			movedIn[d.Node] = true
		case DeltaNodeFail, DeltaLinkFail:
			// Injected failures do not restructure the CNet.
		default:
			onlyMoveIns = false
		}
	}
	if !onlyMoveIns {
		v.rep.skip(name, "churn present; construction set not comparable")
		return
	}
	var missing []graph.NodeID
	for id := range v.nodes {
		if id != v.root && !movedIn[id] {
			missing = append(missing, id)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	if len(missing) > 0 {
		v.rep.add(name, fmt.Errorf("flight: %d recorded nodes have no move-in delta (first: %d)", len(missing), missing[0]), "")
		return
	}
	v.rep.add(name, nil, fmt.Sprintf("%d move-ins cover all non-root nodes", len(movedIn)))
}
