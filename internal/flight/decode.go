package flight

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// decoder walks a byte slice with strict bounds checks; every malformed
// input yields an error, never a panic (FuzzRecordingDecode enforces it).
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("flight: bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("flight: bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) intField() (int, error) {
	v, err := d.uvarint()
	return int(v), err
}

func (d *decoder) id() (graph.NodeID, error) {
	v, err := d.varint()
	return graph.NodeID(v), err
}

func (d *decoder) byteField() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("flight: unexpected end at offset %d", d.off)
	}
	b := d.b[d.off]
	d.off++
	return b, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("flight: string length %d exceeds remaining %d", n, d.remaining())
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) ids() ([]graph.NodeID, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.remaining()) {
		return nil, fmt.Errorf("flight: id list length %d exceeds remaining %d", n, d.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]graph.NodeID, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := d.id()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// --- per-record decoders ----------------------------------------------------

func decodeHeader(d *decoder) (Header, error) {
	var h Header
	var err error
	if h.Version, err = d.intField(); err != nil {
		return h, err
	}
	if h.Seed, err = d.varint(); err != nil {
		return h, err
	}
	if h.N, err = d.intField(); err != nil {
		return h, err
	}
	if h.Side, err = d.intField(); err != nil {
		return h, err
	}
	if h.Channels, err = d.intField(); err != nil {
		return h, err
	}
	if h.Source, err = d.id(); err != nil {
		return h, err
	}
	if h.Protocol, err = d.str(); err != nil {
		return h, err
	}
	bits, err := d.uvarint()
	if err != nil {
		return h, err
	}
	h.LossRate = math.Float64frombits(bits)
	if h.LossSeed, err = d.varint(); err != nil {
		return h, err
	}
	if h.RingLimit, err = d.intField(); err != nil {
		return h, err
	}
	if h.Version >= 2 {
		if h.RNGScheme, err = d.str(); err != nil {
			return h, err
		}
	} else {
		// Version 1 predates counter streams: every v1 recording was made
		// under the serial engine-RNG coin order.
		h.RNGScheme = RNGSchemeEngineRand
	}
	return h, nil
}

func decodeNode(d *decoder) (NodeInfo, error) {
	var n NodeInfo
	var err error
	if n.ID, err = d.id(); err != nil {
		return n, err
	}
	if n.Role, err = d.byteField(); err != nil {
		return n, err
	}
	if n.Parent, err = d.id(); err != nil {
		return n, err
	}
	if n.Depth, err = d.intField(); err != nil {
		return n, err
	}
	if n.BSlot, err = d.intField(); err != nil {
		return n, err
	}
	if n.LSlot, err = d.intField(); err != nil {
		return n, err
	}
	if n.USlot, err = d.intField(); err != nil {
		return n, err
	}
	return n, nil
}

func decodeEdge(d *decoder) (Edge, error) {
	var e Edge
	var err error
	if e.U, err = d.id(); err != nil {
		return e, err
	}
	if e.V, err = d.id(); err != nil {
		return e, err
	}
	return e, nil
}

func decodeDelta(d *decoder) (Delta, error) {
	var dl Delta
	kind, err := d.byteField()
	if err != nil {
		return dl, err
	}
	dl.Kind = DeltaKind(kind)
	if dl.Node, err = d.id(); err != nil {
		return dl, err
	}
	if dl.Peer, err = d.id(); err != nil {
		return dl, err
	}
	if dl.Round, err = d.intField(); err != nil {
		return dl, err
	}
	flags, err := d.byteField()
	if err != nil {
		return dl, err
	}
	dl.RootChanged = flags&1 != 0
	if dl.Reinserted, err = d.ids(); err != nil {
		return dl, err
	}
	if dl.Dropped, err = d.ids(); err != nil {
		return dl, err
	}
	return dl, nil
}

func decodePhase(d *decoder) (Phase, error) {
	var p Phase
	var err error
	if p.Name, err = d.str(); err != nil {
		return p, err
	}
	if p.Lo, err = d.intField(); err != nil {
		return p, err
	}
	if p.Hi, err = d.intField(); err != nil {
		return p, err
	}
	return p, nil
}

func decodeEvent(d *decoder) (radio.Event, error) {
	var ev radio.Event
	var err error
	if ev.Seq, err = d.uvarint(); err != nil {
		return ev, err
	}
	if ev.Round, err = d.intField(); err != nil {
		return ev, err
	}
	kind, err := d.byteField()
	if err != nil {
		return ev, err
	}
	ev.Kind = radio.EventKind(kind)
	if ev.Node, err = d.id(); err != nil {
		return ev, err
	}
	if ev.Peer, err = d.id(); err != nil {
		return ev, err
	}
	ch, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	ev.Channel = radio.Channel(ch)
	ints := []*int{
		&ev.Msg.Seq, nil, nil, nil, &ev.Msg.Slot, &ev.Msg.Depth,
		&ev.Msg.MaxSlot, &ev.Msg.Height, &ev.Msg.Group,
	}
	idFields := map[int]*graph.NodeID{1: &ev.Msg.Src, 2: &ev.Msg.From, 3: &ev.Msg.Dst}
	for i := 0; i < len(ints); i++ {
		if p := idFields[i]; p != nil {
			if *p, err = d.id(); err != nil {
				return ev, err
			}
			continue
		}
		v, err := d.varint()
		if err != nil {
			return ev, err
		}
		*ints[i] = int(v)
	}
	if ev.Msg.Value, err = d.varint(); err != nil {
		return ev, err
	}
	return ev, nil
}

func decodeFooter(d *decoder) (Footer, error) {
	var f Footer
	fields := []*int{
		&f.ScheduleLen, &f.Rounds, &f.Deliveries, &f.Collisions,
		&f.Transmissions, &f.Losses, &f.Received, &f.Audience,
		&f.CompletionRound, &f.DroppedEvents,
	}
	for _, p := range fields {
		v, err := d.intField()
		if err != nil {
			return f, err
		}
		*p = v
	}
	return f, nil
}

// Decode reads a full recording from r. It is strict about framing — the
// magic must match, the header must be the first record, the footer (when
// present) must be the last — but semantic validation is the verifier's
// job, so syntactically well-formed nonsense decodes fine.
func Decode(r io.Reader) (*Recording, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("flight: read recording: %w", err)
	}
	return DecodeBytes(raw)
}

// DecodeBytes is Decode over an in-memory recording.
func DecodeBytes(raw []byte) (*Recording, error) {
	if len(raw) < len(magic) || !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("flight: bad magic (want %q)", magic[:])
	}
	d := &decoder{b: raw, off: len(magic)}
	rec := &Recording{}
	sawHeader := false
	for d.remaining() > 0 {
		if rec.Footer != nil {
			return nil, fmt.Errorf("flight: record after footer at offset %d", d.off)
		}
		typ, err := d.byteField()
		if err != nil {
			return nil, err
		}
		plen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if plen > uint64(d.remaining()) {
			return nil, fmt.Errorf("flight: record length %d exceeds remaining %d", plen, d.remaining())
		}
		payload := &decoder{b: d.b[d.off : d.off+int(plen)]}
		d.off += int(plen)
		if !sawHeader && typ != recHeader {
			return nil, fmt.Errorf("flight: first record is type %d, not a header", typ)
		}
		switch typ {
		case recHeader:
			if sawHeader {
				return nil, fmt.Errorf("flight: duplicate header at offset %d", d.off)
			}
			if rec.Header, err = decodeHeader(payload); err != nil {
				return nil, err
			}
			sawHeader = true
		case recNode:
			n, err := decodeNode(payload)
			if err != nil {
				return nil, err
			}
			rec.Nodes = append(rec.Nodes, n)
		case recEdge:
			e, err := decodeEdge(payload)
			if err != nil {
				return nil, err
			}
			rec.Edges = append(rec.Edges, e)
		case recDelta:
			dl, err := decodeDelta(payload)
			if err != nil {
				return nil, err
			}
			rec.Deltas = append(rec.Deltas, dl)
		case recPhase:
			p, err := decodePhase(payload)
			if err != nil {
				return nil, err
			}
			rec.Phases = append(rec.Phases, p)
		case recEvent:
			ev, err := decodeEvent(payload)
			if err != nil {
				return nil, err
			}
			rec.Events = append(rec.Events, ev)
		case recFooter:
			f, err := decodeFooter(payload)
			if err != nil {
				return nil, err
			}
			rec.Footer = &f
		default:
			return nil, fmt.Errorf("flight: unknown record type %d", typ)
		}
		if payload.remaining() > 0 {
			return nil, fmt.Errorf("flight: %d trailing bytes in record type %d", payload.remaining(), typ)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("flight: empty recording (no header)")
	}
	return rec, nil
}
