package flight

import (
	"fmt"
	"io"
	"sort"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// SpanKind distinguishes the two causal span types.
type SpanKind int

const (
	// SpanTx: the node put the payload on the air.
	SpanTx SpanKind = iota
	// SpanRx: the node received the payload from Parent's transmitter.
	SpanRx
)

// String names the span kind.
func (k SpanKind) String() string {
	if k == SpanTx {
		return "tx"
	}
	return "rx"
}

// Span is one hop-half of a message's journey: a transmission or a
// reception, linked to its cause. A reception's parent is the transmission
// it heard; a transmission's parent is the reception that handed the node
// the payload (nil for nodes that started holding it). Walking Parent
// pointers from any span reaches the payload's origin; Children fan out
// towards the leaves, so the span set of one message forms a DAG rooted at
// the source's first transmission.
type Span struct {
	Kind    SpanKind
	Node    graph.NodeID
	Round   int
	Channel radio.Channel
	// Role and Depth are the node's recorded structural tags (Role 0 /
	// Depth -1 when the node is not in the recorded topology).
	Role  byte
	Depth int
	// Slot is the transmitter's time-slot as carried in the message
	// (b-slot during backbone flooding, l-slot in the leaf window,
	// u-slot under plain CFF; 0 in preamble and token hops).
	Slot int
	Seq  uint64 // engine sequence number of the underlying event

	Parent   *Span
	Children []*Span
}

// MsgTrace is the full causal trace of one payload, keyed by the
// (Msg.Seq, Msg.Src) pair every copy of the payload carries.
type MsgTrace struct {
	Seq int
	Src graph.NodeID
	// Spans in event order; Roots are the spans with no cause (the
	// initial-holder transmissions).
	Spans []*Span
	Roots []*Span

	firstRx map[graph.NodeID]*Span
	lastTx  map[graph.NodeID]*Span
}

// Holders returns every node that held the payload during the trace:
// initial transmitters plus every receiver.
func (t *MsgTrace) Holders() map[graph.NodeID]bool {
	out := make(map[graph.NodeID]bool)
	for _, s := range t.Spans {
		out[s.Node] = true
	}
	return out
}

// DeliveredRound returns the round of id's first reception.
func (t *MsgTrace) DeliveredRound(id graph.NodeID) (int, bool) {
	s, ok := t.firstRx[id]
	if !ok {
		return 0, false
	}
	return s.Round, true
}

// PathTo returns the causal chain source → id: the parent walk from id's
// first reception, reversed. nil when id never received.
func (t *MsgTrace) PathTo(id graph.NodeID) []*Span {
	s, ok := t.firstRx[id]
	if !ok {
		return nil
	}
	var rev []*Span
	for ; s != nil; s = s.Parent {
		rev = append(rev, s)
	}
	out := make([]*Span, len(rev))
	for i, sp := range rev {
		out[len(rev)-1-i] = sp
	}
	return out
}

// traceKey identifies a payload.
type traceKey struct {
	seq int
	src graph.NodeID
}

// Traces builds the causal span DAGs of every payload in the recording,
// in order of first appearance (deterministic: the event stream is).
func (r *Recording) Traces() []*MsgTrace {
	role := make(map[graph.NodeID]byte, len(r.Nodes))
	depth := make(map[graph.NodeID]int, len(r.Nodes))
	for i := range r.Nodes {
		role[r.Nodes[i].ID] = r.Nodes[i].Role
		depth[r.Nodes[i].ID] = r.Nodes[i].Depth
	}
	byKey := make(map[traceKey]*MsgTrace)
	var order []*MsgTrace
	get := func(m radio.Message) *MsgTrace {
		k := traceKey{seq: m.Seq, src: m.Src}
		t, ok := byKey[k]
		if !ok {
			t = &MsgTrace{
				Seq: m.Seq, Src: m.Src,
				firstRx: make(map[graph.NodeID]*Span),
				lastTx:  make(map[graph.NodeID]*Span),
			}
			byKey[k] = t
			order = append(order, t)
		}
		return t
	}
	mkSpan := func(t *MsgTrace, kind SpanKind, ev radio.Event) *Span {
		d, ok := depth[ev.Node]
		if !ok {
			d = -1
		}
		s := &Span{
			Kind: kind, Node: ev.Node, Round: ev.Round, Channel: ev.Channel,
			Role: role[ev.Node], Depth: d, Slot: ev.Msg.Slot, Seq: ev.Seq,
		}
		t.Spans = append(t.Spans, s)
		return s
	}
	for _, ev := range r.Events {
		switch ev.Kind {
		case radio.EvTransmit:
			t := get(ev.Msg)
			s := mkSpan(t, SpanTx, ev)
			if rx, ok := t.firstRx[ev.Node]; ok {
				s.Parent = rx
				rx.Children = append(rx.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
			t.lastTx[ev.Node] = s
		case radio.EvDeliver:
			t := get(ev.Msg)
			s := mkSpan(t, SpanRx, ev)
			if tx, ok := t.lastTx[ev.Peer]; ok {
				// The engine emits the transmission before its receptions,
				// so the cause is always already present.
				s.Parent = tx
				tx.Children = append(tx.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
			if _, seen := t.firstRx[ev.Node]; !seen {
				t.firstRx[ev.Node] = s
			}
		}
	}
	return order
}

// Trace returns the payload trace with the given message sequence number
// (nil when the recording has none). When several sources used the same
// sequence the one appearing first wins.
func (r *Recording) Trace(msgSeq int) *MsgTrace {
	for _, t := range r.Traces() {
		if t.Seq == msgSeq {
			return t
		}
	}
	return nil
}

// mainTrace picks the payload trace of the recorded broadcast: the one
// with the most spans (ties broken by first appearance).
func (r *Recording) mainTrace() *MsgTrace {
	var best *MsgTrace
	for _, t := range r.Traces() {
		if best == nil || len(t.Spans) > len(best.Spans) {
			best = t
		}
	}
	return best
}

// WriteTree renders the span DAG as an indented tree, one line per span.
func (t *MsgTrace) WriteTree(w io.Writer) error {
	rx := 0
	seen := make(map[graph.NodeID]bool)
	for _, s := range t.Spans {
		if s.Kind == SpanRx && !seen[s.Node] {
			seen[s.Node] = true
			rx++
		}
	}
	if _, err := fmt.Fprintf(w, "trace seq=%d src=%d: %d spans, %d nodes reached\n",
		t.Seq, t.Src, len(t.Spans), rx); err != nil {
		return err
	}
	var walk func(s *Span, indent int) error
	walk = func(s *Span, indent int) error {
		for i := 0; i < indent; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		line := fmt.Sprintf("%s node %d r%d ch%d depth=%d role=%s",
			s.Kind, s.Node, s.Round, s.Channel, s.Depth, RoleName(s.Role))
		if s.Slot > 0 {
			line += fmt.Sprintf(" slot=%d", s.Slot)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, indent+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range t.Roots {
		if err := walk(root, 1); err != nil {
			return err
		}
	}
	return nil
}

// MissReport explains why a node never received the broadcast payload:
// the first hop (From -> To) of the structural path source → node where
// the payload stopped, and the evidence-backed reason.
type MissReport struct {
	Node     graph.NodeID
	Received bool
	Round    int // round of reception when Received, else 0
	// From/To is the first broken hop; Reason the diagnosis.
	From, To graph.NodeID
	Reason   string
}

// String renders the report as one line.
func (m MissReport) String() string {
	if m.Received {
		return fmt.Sprintf("node %d received the payload in round %d", m.Node, m.Round)
	}
	return fmt.Sprintf("node %d never received: first broken hop %d -> %d (%s)",
		m.Node, m.From, m.To, m.Reason)
}

// WhyMissed localizes the first failed hop on the structural path from
// the broadcast source to node: preamble hops source → root up the tree,
// then tree hops root → node. It walks the path from the source end and
// stops at the first hop whose far end never held the payload, then mines
// the event stream and churn deltas for the reason (transmitter died,
// frame lost, collision, link cut, or a scheduling gap).
func (r *Recording) WhyMissed(node graph.NodeID) (MissReport, error) {
	t := r.mainTrace()
	if t == nil {
		return MissReport{}, fmt.Errorf("flight: recording has no payload trace")
	}
	holders := t.Holders()
	if holders[node] {
		round, _ := t.DeliveredRound(node)
		return MissReport{Node: node, Received: true, Round: round}, nil
	}
	parents := r.parents()
	if _, ok := parents[node]; !ok {
		return MissReport{}, fmt.Errorf("flight: node %d not in recorded topology", node)
	}
	src := r.Header.Source
	if _, ok := parents[src]; !ok {
		src = t.Src
	}
	path, err := r.structuralPath(parents, src, node)
	if err != nil {
		return MissReport{}, err
	}
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if holders[u] && !holders[v] {
			return MissReport{
				Node: node, From: u, To: v,
				Reason: r.diagnoseHop(t, u, v),
			}, nil
		}
	}
	return MissReport{}, fmt.Errorf("flight: no broken hop on path to %d (source never held the payload?)", node)
}

// structuralPath is the expected delivery route src → ... → root → ... →
// dst over the recorded tree (the up-leg is the preamble; the down-leg is
// the flooding direction). The shared prefix above the two nodes' lowest
// common ancestor is trimmed.
func (r *Recording) structuralPath(parents map[graph.NodeID]graph.NodeID, src, dst graph.NodeID) ([]graph.NodeID, error) {
	up, err := pathToRoot(parents, src)
	if err != nil {
		return nil, err
	}
	down, err := pathToRoot(parents, dst)
	if err != nil {
		return nil, err
	}
	// Trim the common tail (ancestors above the LCA), keeping the LCA.
	for len(up) >= 2 && len(down) >= 2 &&
		up[len(up)-1] == down[len(down)-1] && up[len(up)-2] == down[len(down)-2] {
		up = up[:len(up)-1]
		down = down[:len(down)-1]
	}
	for i := len(down) - 2; i >= 0; i-- { // skip the LCA already in up
		up = append(up, down[i])
	}
	return up, nil
}

// pathToRoot walks the parent map from id to the root, inclusive.
func pathToRoot(parents map[graph.NodeID]graph.NodeID, id graph.NodeID) ([]graph.NodeID, error) {
	var out []graph.NodeID
	for cur := id; ; {
		out = append(out, cur)
		p, ok := parents[cur]
		if !ok {
			return nil, fmt.Errorf("flight: node %d not in recorded topology", cur)
		}
		if p == NoParent {
			return out, nil
		}
		if len(out) > len(parents) {
			return nil, fmt.Errorf("flight: parent cycle at node %d", cur)
		}
		cur = p
	}
}

// diagnoseHop explains why v never got the payload from u, in evidence
// priority order: v or u died, the frame was lost, v heard a collision
// while u transmitted, the u-v link was cut, or u simply never relayed.
func (r *Recording) diagnoseHop(t *MsgTrace, u, v graph.NodeID) string {
	died := make(map[graph.NodeID]int)
	cut := make(map[Edge]int)
	for _, ev := range r.Events {
		switch ev.Kind {
		case radio.EvNodeFail:
			if _, ok := died[ev.Node]; !ok {
				died[ev.Node] = ev.Round
			}
		case radio.EvLinkFail:
			e := Edge{U: ev.Node, V: ev.Peer}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if _, ok := cut[e]; !ok {
				cut[e] = ev.Round
			}
		}
	}
	var txRounds []int
	for _, s := range t.Spans {
		if s.Kind == SpanTx && s.Node == u {
			txRounds = append(txRounds, s.Round)
		}
	}
	sort.Ints(txRounds)
	if len(txRounds) == 0 {
		if rd, ok := died[u]; ok {
			return fmt.Sprintf("transmitter %d died in round %d before relaying", u, rd)
		}
		return fmt.Sprintf("holder %d never transmitted the payload (not scheduled to relay)", u)
	}
	if rd, ok := died[v]; ok && rd <= txRounds[len(txRounds)-1] {
		return fmt.Sprintf("receiver %d died in round %d", v, rd)
	}
	inTxRound := func(round int) bool {
		i := sort.SearchInts(txRounds, round)
		return i < len(txRounds) && txRounds[i] == round
	}
	for _, ev := range r.Events {
		if ev.Kind == radio.EvLoss && ev.Node == v && ev.Peer == u {
			return fmt.Sprintf("frame %d -> %d lost in round %d (loss model)", u, v, ev.Round)
		}
		if ev.Kind == radio.EvCollision && ev.Node == v && inTxRound(ev.Round) {
			return fmt.Sprintf("collision at %d in round %d while %d transmitted", v, ev.Round, u)
		}
	}
	e := Edge{U: u, V: v}
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	if rd, ok := cut[e]; ok && rd <= txRounds[len(txRounds)-1] {
		return fmt.Sprintf("link %d-%d cut in round %d", e.U, e.V, rd)
	}
	return fmt.Sprintf("%d transmitted in round %d but %d was not listening on its channel", u, txRounds[0], v)
}
