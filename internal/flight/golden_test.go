package flight_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/flight"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// compareGolden checks got against testdata/<name>, rewriting the file
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/flight -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestChromeTraceGolden locks down the Chrome trace-event export for a
// deterministic run that exercises every event kind: transmissions,
// receptions, a mid-run node death, and frame losses. The output must also
// be valid JSON, since its whole point is to load in Perfetto.
func TestChromeTraceGolden(t *testing.T) {
	net := buildNet(t, 24, 8, 5)
	nodes := net.CNet().Tree().Nodes()
	victim := nodes[len(nodes)-1]
	raw, _ := record(t, net, 5, 24, 8, broadcast.Options{
		Channels: 1,
		Failures: []broadcast.NodeFailure{{Node: victim, Round: 2}},
		LossRate: 0.15, LossSeed: 7,
	}, 0)
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flight.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome trace is not valid JSON")
	}
	compareGolden(t, "chrome.golden", buf.Bytes())
}
