package flight_test

import (
	"bytes"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/flight"
)

// FuzzRecordingDecode feeds arbitrary bytes to the strict decoder. Two
// properties must hold: decoding never panics, and any input the decoder
// accepts re-encodes to a canonical form on which Encode∘Decode is a byte
// fixpoint (so recordings survive arbitrary round-trips unchanged).
func FuzzRecordingDecode(f *testing.F) {
	raw, _ := recordRun(f, 20, 8, 3, broadcast.Options{Channels: 1}, 0)
	f.Add(raw)
	ringRaw, _ := recordRun(f, 20, 8, 3, broadcast.Options{Channels: 1}, 8)
	f.Add(ringRaw)
	f.Add([]byte(nil))
	f.Add([]byte("DSFR"))
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)
	f.Add(raw[:len(raw)/2])
	f.Add(append(append([]byte(nil), raw...), 6, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := flight.DecodeBytes(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var a bytes.Buffer
		if err := rec.Encode(&a); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		rec2, err := flight.DecodeBytes(a.Bytes())
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		var b bytes.Buffer
		if err := rec2.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("Encode∘Decode is not a byte fixpoint")
		}
	})
}
