package flight_test

import (
	"bytes"
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/flight"
	"dynsens/internal/netio"
	"dynsens/internal/radio"
	"dynsens/internal/workload"
)

// buildNet deploys a paper-style network for recording tests.
func buildNet(t testing.TB, n, side int, seed int64) *core.Network {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// record runs one ICFF broadcast on net with a flight writer attached and
// returns the encoded recording plus the run's metrics.
func record(t testing.TB, net *core.Network, seed int64, n, side int, opts broadcast.Options, ring int) ([]byte, broadcast.Metrics) {
	t.Helper()
	var buf bytes.Buffer
	fw := flight.NewWriter(&buf)
	if ring > 0 {
		fw = flight.NewRingWriter(&buf, ring)
	}
	fw.WriteHeader(flight.Header{
		Seed: seed, N: n, Side: side, Channels: opts.Channels,
		Source: net.Root(), Protocol: "ICFF",
		LossRate: opts.LossRate, LossSeed: opts.LossSeed,
	})
	netio.RecordTopology(fw, net)
	opts.Flight = fw
	m, err := net.Broadcast(net.Root(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), m
}

// recordRun is record over a fresh deployment.
func recordRun(t testing.TB, n, side int, seed int64, opts broadcast.Options, ring int) ([]byte, broadcast.Metrics) {
	t.Helper()
	return record(t, buildNet(t, n, side, seed), seed, n, side, opts, ring)
}

// TestWriterEncodeFixpoint: the incremental Writer and Recording.Encode
// agree byte for byte, and Encode∘Decode is the identity on its own output.
func TestWriterEncodeFixpoint(t *testing.T) {
	raw, _ := recordRun(t, 30, 8, 4, broadcast.Options{Channels: 1}, 0)
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := rec.Encode(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatalf("re-encode differs from Writer output (%d vs %d bytes)", out.Len(), len(raw))
	}
	rec2, err := flight.DecodeBytes(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := rec2.Encode(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("Encode∘Decode is not a byte fixpoint")
	}
}

// TestHeaderRNGSchemeDefaults: a Writer header with nothing set comes out
// as the current format version carrying the counter-stream scheme, and
// the scheme survives a decode round trip.
func TestHeaderRNGSchemeDefaults(t *testing.T) {
	raw, _ := recordRun(t, 30, 8, 4, broadcast.Options{Channels: 1}, 0)
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.Version != flight.Version {
		t.Fatalf("header version %d, want %d", rec.Header.Version, flight.Version)
	}
	if rec.Header.RNGScheme != flight.RNGSchemeCounter {
		t.Fatalf("header scheme %q, want %q", rec.Header.RNGScheme, flight.RNGSchemeCounter)
	}
}

// TestHeaderV1BackwardCompatible: a version-1 recording (no RNGScheme on
// the wire) still decodes — the scheme defaults to the serial engine RNG
// every v1 run drew from — and re-encodes to its original bytes, so old
// recordings stay verifiable and bit-stable.
func TestHeaderV1BackwardCompatible(t *testing.T) {
	v1 := flight.Recording{
		Header: flight.Header{Version: 1, Seed: 9, N: 4, Side: 2, Channels: 1,
			Source: 0, Protocol: "ICFF", LossRate: 0.15, LossSeed: 3},
		Events: []radio.Event{
			{Seq: 1, Round: 1, Kind: radio.EvTransmit, Node: 0, Peer: flight.NoParent, Channel: 0},
		},
	}
	var raw bytes.Buffer
	if err := v1.Encode(&raw); err != nil {
		t.Fatal(err)
	}
	dec, err := flight.DecodeBytes(raw.Bytes())
	if err != nil {
		t.Fatalf("v1 recording failed to decode: %v", err)
	}
	if dec.Header.Version != 1 {
		t.Fatalf("decoded version %d, want 1", dec.Header.Version)
	}
	if dec.Header.RNGScheme != flight.RNGSchemeEngineRand {
		t.Fatalf("v1 scheme defaulted to %q, want %q", dec.Header.RNGScheme, flight.RNGSchemeEngineRand)
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw.Bytes()) {
		t.Fatalf("v1 re-encode drifted (%d vs %d bytes): the scheme field must stay version-gated",
			again.Len(), raw.Len())
	}
}

// TestVerifierPassesCleanRun: a clean recorded run decodes with the full
// topology and passes every offline check.
func TestVerifierPassesCleanRun(t *testing.T) {
	raw, m := recordRun(t, 30, 8, 4, broadcast.Options{Channels: 1}, 0)
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Nodes) != 30 {
		t.Fatalf("recorded %d nodes, want 30", len(rec.Nodes))
	}
	if rec.Footer == nil {
		t.Fatal("no footer")
	}
	if rec.Footer.Transmissions != m.Transmissions || rec.Footer.Received != m.Received {
		t.Fatalf("footer %+v does not match metrics %+v", *rec.Footer, m)
	}
	if len(rec.Events) < m.Transmissions {
		t.Fatalf("%d events recorded, want >= %d transmissions", len(rec.Events), m.Transmissions)
	}
	rep := flight.Verify(rec)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("verifier failed on a clean run:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("report does not announce PASS:\n%s", buf.String())
	}
}

// TestVerifierPassesLossyRun: injected failures and frame losses must not
// trip the verifier (collision-freedom is skipped, the rest still holds).
func TestVerifierPassesLossyRun(t *testing.T) {
	net := buildNet(t, 40, 8, 2)
	nodes := net.CNet().Tree().Nodes()
	victim := nodes[len(nodes)-1]
	raw, m := record(t, net, 2, 40, 8, broadcast.Options{
		Channels: 1,
		Failures: []broadcast.NodeFailure{{Node: victim, Round: 2}},
		LossRate: 0.2, LossSeed: 11,
	}, 0)
	if m.Received == m.Audience {
		t.Log("lossy run still delivered everywhere; verifier checks remain meaningful")
	}
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep := flight.Verify(rec)
	if !rep.Passed() {
		var buf bytes.Buffer
		_ = rep.Write(&buf)
		t.Fatalf("verifier failed on a lossy run:\n%s", buf.String())
	}
}

// TestRingKeepsTail: the bounded ring retains exactly the newest events
// with contiguous sequence numbers, reports the eviction count, and the
// verifier still passes (with the affected checks skipped).
func TestRingKeepsTail(t *testing.T) {
	const cap = 15
	raw, _ := recordRun(t, 30, 8, 4, broadcast.Options{Channels: 1}, cap)
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() == 0 {
		t.Fatal("ring evicted nothing on a 30-node run")
	}
	if len(rec.Events) != cap {
		t.Fatalf("ring kept %d events, want %d", len(rec.Events), cap)
	}
	if rec.Header.RingLimit != cap {
		t.Fatalf("header ring limit %d, want %d", rec.Header.RingLimit, cap)
	}
	want := uint64(rec.Dropped() + 1)
	for i, ev := range rec.Events {
		if ev.Seq != want+uint64(i) {
			t.Fatalf("event %d has seq %d, want %d (tail must stay contiguous)", i, ev.Seq, want+uint64(i))
		}
	}
	rep := flight.Verify(rec)
	if !rep.Passed() {
		var buf bytes.Buffer
		_ = rep.Write(&buf)
		t.Fatalf("verifier failed on a ring recording:\n%s", buf.String())
	}
}

// TestTraceCausality: on a clean full-coverage run, the main payload's span
// DAG reaches every node, every causal path starts at the source, and
// rounds never decrease along a path.
func TestTraceCausality(t *testing.T) {
	raw, m := recordRun(t, 30, 8, 4, broadcast.Options{Channels: 1}, 0)
	if m.Received != m.Audience {
		t.Fatalf("clean run did not deliver everywhere (%d/%d)", m.Received, m.Audience)
	}
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) == 0 {
		t.Fatal("no payload traces")
	}
	main := traces[0]
	for _, tr := range traces {
		if len(tr.Spans) > len(main.Spans) {
			main = tr
		}
	}
	holders := main.Holders()
	for _, n := range rec.Nodes {
		if !holders[n.ID] {
			t.Fatalf("node %d missing from the span DAG of a full-coverage run", n.ID)
		}
		if n.ID == main.Src {
			continue
		}
		path := main.PathTo(n.ID)
		if len(path) == 0 {
			t.Fatalf("no causal path to node %d", n.ID)
		}
		if path[0].Node != main.Src {
			t.Fatalf("path to %d starts at node %d, not the source %d", n.ID, path[0].Node, main.Src)
		}
		for i := 1; i < len(path); i++ {
			if path[i].Round < path[i-1].Round {
				t.Fatalf("path to %d goes back in time at hop %d", n.ID, i)
			}
		}
		if _, ok := main.DeliveredRound(n.ID); !ok {
			t.Fatalf("holder %d has no delivery round", n.ID)
		}
	}
	var buf bytes.Buffer
	if err := main.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace seq=") || !strings.Contains(out, "tx node") {
		t.Fatalf("span tree rendering malformed:\n%s", out)
	}
}

// craft builds a 3-node chain recording (0 -> 1 -> 2) by hand: the payload
// reaches node 1 and stops there. extra events are appended after the two
// delivery hops.
func craft(t *testing.T, extra ...radio.Event) *flight.Recording {
	t.Helper()
	var buf bytes.Buffer
	fw := flight.NewWriter(&buf)
	fw.WriteHeader(flight.Header{Seed: 1, N: 3, Side: 1, Channels: 1, Source: 0, Protocol: "ICFF"})
	fw.WriteNode(flight.NodeInfo{ID: 0, Role: flight.RoleHead, Parent: flight.NoParent, Depth: 0})
	fw.WriteNode(flight.NodeInfo{ID: 1, Role: flight.RoleMember, Parent: 0, Depth: 1})
	fw.WriteNode(flight.NodeInfo{ID: 2, Role: flight.RoleMember, Parent: 1, Depth: 2})
	fw.WriteEdge(0, 1)
	fw.WriteEdge(1, 2)
	msg := radio.Message{Seq: 7, Src: 0}
	fw.WriteEvent(radio.Event{Seq: 1, Round: 1, Kind: radio.EvTransmit, Node: 0, Peer: flight.NoParent, Msg: msg})
	fw.WriteEvent(radio.Event{Seq: 2, Round: 1, Kind: radio.EvDeliver, Node: 1, Peer: 0, Msg: msg})
	for _, ev := range extra {
		fw.WriteEvent(ev)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := flight.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestWhyMissedLocalizesFirstBrokenHop(t *testing.T) {
	rec := craft(t)
	m, err := rec.WhyMissed(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Received {
		t.Fatal("node 2 reported as received")
	}
	if m.From != 1 || m.To != 2 {
		t.Fatalf("broken hop %d -> %d, want 1 -> 2", m.From, m.To)
	}
	if !strings.Contains(m.Reason, "never transmitted") {
		t.Fatalf("reason %q does not explain the silent holder", m.Reason)
	}
	if !strings.Contains(m.String(), "first broken hop 1 -> 2") {
		t.Fatalf("report line malformed: %s", m)
	}
}

func TestWhyMissedBlamesDeadTransmitter(t *testing.T) {
	rec := craft(t, radio.Event{Seq: 3, Round: 2, Kind: radio.EvNodeFail, Node: 1, Peer: flight.NoParent})
	m, err := rec.WhyMissed(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Reason, "died in round 2") {
		t.Fatalf("reason %q does not blame the dead transmitter", m.Reason)
	}
}

func TestWhyMissedReportsDelivery(t *testing.T) {
	rec := craft(t)
	m, err := rec.WhyMissed(1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Received || m.Round != 1 {
		t.Fatalf("node 1 received in round 1, got %+v", m)
	}
	if _, err := rec.WhyMissed(99); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestTraceLookup(t *testing.T) {
	rec := craft(t)
	if tr := rec.Trace(7); tr == nil || tr.Src != 0 {
		t.Fatalf("Trace(7) = %+v", tr)
	}
	if tr := rec.Trace(99); tr != nil {
		t.Fatal("Trace(99) found a phantom payload")
	}
}

// TestDecodeRejectsMalformed: the strict decoder must turn every framing
// violation into an error (the fuzz target guards the panic-free half).
func TestDecodeRejectsMalformed(t *testing.T) {
	raw, _ := recordRun(t, 20, 8, 3, broadcast.Options{Channels: 1}, 0)

	headerOnly := func() []byte {
		var buf bytes.Buffer
		fw := flight.NewWriter(&buf)
		fw.WriteHeader(flight.Header{Seed: 1, N: 1, Side: 1, Channels: 1})
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	flip := append([]byte(nil), raw...)
	flip[0] ^= 0xff

	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"bad magic", flip, "bad magic"},
		{"magic only", raw[:4], "no header"},
		{"truncated", raw[:len(raw)-3], ""},
		{"record after footer", append(append([]byte(nil), raw...), 6, 0), "after footer"},
		{"unknown type", append(append([]byte(nil), headerOnly...), 99, 0), "unknown record type"},
		{"trailing bytes in record", append(append([]byte(nil), headerOnly...), 3, 3, 0, 0, 0), "trailing"},
		{"header not first", append(append([]byte(nil), raw[:4]...), 3, 2, 0, 0), "not a header"},
	}
	for _, tc := range cases {
		rec, err := flight.DecodeBytes(tc.in)
		if err == nil {
			t.Errorf("%s: decoded successfully (%d events)", tc.name, len(rec.Events))
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRecordingAccessors(t *testing.T) {
	rec := craft(t)
	if rec.Role(0) != flight.RoleHead || rec.Role(99) != 0 {
		t.Fatal("Role lookup broken")
	}
	for role, want := range map[byte]string{
		flight.RoleHead: "head", flight.RoleGateway: "gateway",
		flight.RoleMember: "member", 'x': "unknown",
	} {
		if got := flight.RoleName(role); got != want {
			t.Errorf("RoleName(%q) = %q, want %q", role, got, want)
		}
	}
	g, err := rec.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("rebuilt graph has %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
	if rec.Dropped() != 0 {
		t.Fatal("unbounded recording reports drops")
	}
}
