// Package flight is the causal half of the observability layer: where
// internal/obs aggregates (counters, histograms), flight records — every
// radio event of a deterministic run, the topology it ran on, the churn
// deltas that shaped it, and the protocol phase markers, in a compact
// length-prefixed binary log (the "flight recording"). A recording is
// enough to answer the questions aggregates cannot: follow one broadcast
// message hop by hop through BT(G) (causal spans), localize the first
// broken hop on the path to a node that never received (WhyMissed), and
// re-check the paper's invariants offline (Verify) — all without
// re-running the simulation.
//
// The file format is a stream of typed, length-prefixed records after a
// 4-byte magic: header, node, edge, delta, phase, event, footer. Integers
// are varints, strings are length-prefixed. Writers buffer records and
// emit them in canonical section order on Close, so a decoded recording
// re-encodes byte-identically; a bounded ring mode keeps only the last N
// radio events for long soak runs (the footer then reports the drop
// count). See docs/observability.md ("Tracing & flight recording").
package flight

import (
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Version is the current recording format version. Version 2 added
// Header.RNGScheme (the loss-coin scheme the run drew from); version 1
// recordings decode with RNGScheme defaulted to RNGSchemeEngineRand and
// still re-encode byte-identically.
const Version = 2

// Loss-coin scheme names carried in Header.RNGScheme. Replay tooling
// prints the scheme so a recording made under one coin order is never
// silently re-verified under another.
const (
	// RNGSchemeEngineRand is the pre-v2 serial engine RNG: one shared
	// math/rand stream drawn in the kernel's sequential merge.
	RNGSchemeEngineRand = "engine-rand-v1"
	// RNGSchemeCounter is the counter-based per-listener stream scheme:
	// splitmix64 streams keyed (lossSeed, listener, round), drawn in-shard
	// (internal/radio/rng.go).
	RNGSchemeCounter = "counter-splitmix64-v2"
)

// Role bytes used in NodeInfo.Role; they mirror cnet.Status without
// importing it, so the package stays loadable by external tooling.
const (
	RoleHead    = 'h'
	RoleGateway = 'g'
	RoleMember  = 'm'
)

// NoParent marks a root node in NodeInfo.Parent and an absent peer in
// records that carry one.
const NoParent graph.NodeID = -1

// Header opens every recording: the knobs that make the run reproducible
// and the facts the offline verifier keys its protocol checks off.
type Header struct {
	Version  int
	Seed     int64 // deployment seed
	N        int   // node count at deployment time
	Side     int   // region side in 100 m units
	Channels int   // radio channels k
	Source   graph.NodeID
	Protocol string // plan protocol name ("ICFF", "CFF", "DFO", ...)
	LossRate float64
	LossSeed int64
	// RingLimit is the event ring capacity the recording was made with
	// (0 = unbounded).
	RingLimit int
	// RNGScheme names the loss-coin scheme the run drew from (one of the
	// RNGScheme* constants). Present on the wire from Version 2; version 1
	// recordings decode as RNGSchemeEngineRand.
	RNGScheme string
}

// NodeInfo is the recorded structural state of one node: cluster role,
// tree parent, depth, and its three time-slots (0 = none). Together with
// Edges this is enough to re-check Definition 1/2 and Lemma 2/3 offline.
type NodeInfo struct {
	ID     graph.NodeID
	Role   byte // RoleHead, RoleGateway or RoleMember
	Parent graph.NodeID
	Depth  int
	BSlot  int
	LSlot  int
	USlot  int
}

// Edge is one undirected G-edge.
type Edge struct {
	U, V graph.NodeID
}

// DeltaKind classifies topology/churn deltas.
type DeltaKind byte

const (
	// DeltaMoveIn: a node joined (node-move-in), including construction
	// insertions and the re-insertions done by move-out/crash repair.
	DeltaMoveIn DeltaKind = iota
	// DeltaMoveOut: a node departed gracefully.
	DeltaMoveOut
	// DeltaCrash: a non-graceful repair after node crashes.
	DeltaCrash
	// DeltaNodeFail: a node death injected into the radio engine.
	DeltaNodeFail
	// DeltaLinkFail: a link cut injected into the radio engine.
	DeltaLinkFail
)

// String names the delta kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaMoveIn:
		return "move-in"
	case DeltaMoveOut:
		return "move-out"
	case DeltaCrash:
		return "crash"
	case DeltaNodeFail:
		return "node-fail"
	case DeltaLinkFail:
		return "link-fail"
	default:
		return "delta(?)"
	}
}

// Delta is one recorded topology/churn event.
type Delta struct {
	Kind DeltaKind
	Node graph.NodeID
	Peer graph.NodeID // DeltaLinkFail: other endpoint; else NoParent
	// Round is the scheduled engine round for injected failures; 0 for
	// structural operations that happen between runs.
	Round       int
	Reinserted  []graph.NodeID
	Dropped     []graph.NodeID
	RootChanged bool
}

// Phase marks a protocol phase over an inclusive round range.
type Phase struct {
	Name   string
	Lo, Hi int
}

// Footer closes a recording with the run's measured outcome, so the
// verifier can cross-check the event stream against what the engine
// reported.
type Footer struct {
	ScheduleLen     int
	Rounds          int
	Deliveries      int
	Collisions      int
	Transmissions   int
	Losses          int
	Received        int
	Audience        int
	CompletionRound int
	// DroppedEvents is how many radio events the ring evicted (0 for
	// unbounded recordings).
	DroppedEvents int
}

// Recording is a fully decoded flight recording.
type Recording struct {
	Header Header
	Nodes  []NodeInfo
	Edges  []Edge
	Deltas []Delta
	Phases []Phase
	Events []radio.Event
	// Footer is nil when the recording was truncated before Close.
	Footer *Footer
}

// Dropped returns the number of ring-evicted events (0 without a footer).
func (r *Recording) Dropped() int {
	if r.Footer == nil {
		return 0
	}
	return r.Footer.DroppedEvents
}

// MaxRound returns the last round the recording shows activity in: the
// highest event round, or the footer's executed-round count if larger
// (a ring recording may have evicted the late events).
func (r *Recording) MaxRound() int {
	last := 0
	for i := range r.Events {
		if r.Events[i].Round > last {
			last = r.Events[i].Round
		}
	}
	if r.Footer != nil && r.Footer.Rounds > last {
		last = r.Footer.Rounds
	}
	return last
}

// Role returns the recorded role byte of id (0 when unknown).
func (r *Recording) Role(id graph.NodeID) byte {
	for i := range r.Nodes {
		if r.Nodes[i].ID == id {
			return r.Nodes[i].Role
		}
	}
	return 0
}

// RoleName spells a role byte out.
func RoleName(role byte) string {
	switch role {
	case RoleHead:
		return "head"
	case RoleGateway:
		return "gateway"
	case RoleMember:
		return "member"
	default:
		return "unknown"
	}
}

// parents returns the recorded tree as a parent map.
func (r *Recording) parents() map[graph.NodeID]graph.NodeID {
	out := make(map[graph.NodeID]graph.NodeID, len(r.Nodes))
	for i := range r.Nodes {
		out[r.Nodes[i].ID] = r.Nodes[i].Parent
	}
	return out
}

// Graph rebuilds the connectivity graph from the recorded nodes and edges.
func (r *Recording) Graph() (*graph.Graph, error) {
	g := graph.New()
	for i := range r.Nodes {
		g.AddNode(r.Nodes[i].ID)
	}
	for _, e := range r.Edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}
