module dynsens

go 1.22
