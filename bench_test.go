// Package dynsens_test holds the benchmark harness: one benchmark per
// table/figure of the paper's evaluation (and per extension experiment).
// Each benchmark rebuilds the corresponding measurement and surfaces the
// figure's series through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every number. The experiment tables themselves are produced
// by cmd/experiments; these benchmarks additionally time the implementation
// (construction cost, protocol execution cost) at paper scale.
package dynsens_test

import (
	"fmt"
	"math"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/discovery"
	"dynsens/internal/energy"
	"dynsens/internal/expt"
	"dynsens/internal/gather"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

// paperSizes are the x axis of Figures 8-11.
var paperSizes = []int{100, 200, 300, 400, 500}

func mustNetwork(b *testing.B, seed int64, side, n int) *core.Network {
	b.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		b.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkFig08Broadcast measures Figure 8: completion rounds of the CFF
// broadcast (Algorithm 2) vs the DFO baseline at each network size.
func BenchmarkFig08Broadcast(b *testing.B) {
	for _, n := range paperSizes {
		b.Run(fmt.Sprintf("n=%d/cff", n), func(b *testing.B) {
			net := mustNetwork(b, 1, 10, n)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := net.Broadcast(net.Root(), broadcast.Options{})
				if err != nil || !m.Completed {
					b.Fatalf("broadcast failed: %v %s", err, m)
				}
				rounds = m.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("n=%d/dfo", n), func(b *testing.B) {
			net := mustNetwork(b, 1, 10, n)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := net.BroadcastDFO(net.Root(), broadcast.Options{})
				if err != nil || !m.Completed {
					b.Fatalf("broadcast failed: %v %s", err, m)
				}
				rounds = m.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkFig09Awake measures Figure 9: the maximum rounds any node must
// stay awake during a broadcast, per protocol and size.
func BenchmarkFig09Awake(b *testing.B) {
	for _, n := range paperSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := mustNetwork(b, 1, 10, n)
			var cff, dfo int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc, err := net.Broadcast(net.Root(), broadcast.Options{})
				if err != nil {
					b.Fatal(err)
				}
				md, err := net.BroadcastDFO(net.Root(), broadcast.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cff, dfo = mc.MaxAwake, md.MaxAwake
			}
			b.ReportMetric(float64(cff), "cff-awake")
			b.ReportMetric(float64(dfo), "dfo-awake")
		})
	}
}

// BenchmarkFig10Backbone measures Figure 10: backbone size and height per
// network size (and times full self-construction).
func BenchmarkFig10Backbone(b *testing.B) {
	for _, n := range paperSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := workload.IncrementalConnected(workload.PaperConfig(1, 10, n))
			if err != nil {
				b.Fatal(err)
			}
			var st core.Snapshot
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := core.Build(d.Graph(), core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				st = net.Stats()
			}
			b.ReportMetric(float64(st.BackboneSize), "bt-size")
			b.ReportMetric(float64(st.BackboneHeight), "bt-height")
		})
	}
}

// BenchmarkFig11DegreesSlots measures Figure 11: D, d, Delta, delta per
// network size.
func BenchmarkFig11DegreesSlots(b *testing.B) {
	for _, n := range paperSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := mustNetwork(b, 1, 10, n)
			var st core.Snapshot
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st = net.Stats()
			}
			b.ReportMetric(float64(st.DegreeG), "D")
			b.ReportMetric(float64(st.DegreeBT), "d")
			b.ReportMetric(float64(st.Delta), "Delta")
			b.ReportMetric(float64(st.SmallDelta), "delta")
		})
	}
}

// BenchmarkBoundsCheck validates Lemma 3 at scale: measured slots against
// the quadratic bounds.
func BenchmarkBoundsCheck(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	var st core.Snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = net.Stats()
		if st.Delta > st.BoundL || st.SmallDelta > st.BoundB {
			b.Fatalf("Lemma 3 violated: %+v", st)
		}
	}
	b.ReportMetric(float64(st.Delta)/float64(st.BoundL), "Delta/bound")
	b.ReportMetric(float64(st.SmallDelta)/float64(st.BoundB), "delta/bound")
}

// BenchmarkMultiChannel measures the Section 3.3 k-channel speedup at
// n=500.
func BenchmarkMultiChannel(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			net := mustNetwork(b, 1, 10, 500)
			var rounds, awake int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := net.Broadcast(net.Root(), broadcast.Options{Channels: k})
				if err != nil || !m.Completed {
					b.Fatalf("broadcast failed: %v %s", err, m)
				}
				rounds, awake = m.CompletionRound, m.MaxAwake
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(awake), "max-awake")
		})
	}
}

// BenchmarkMulticast measures Section 3.4: transmissions of a multicast to
// a 10% group vs a full broadcast at n=500.
func BenchmarkMulticast(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	i := 0
	for _, id := range net.CNet().Tree().Nodes() {
		if i%10 == 0 {
			if err := net.JoinGroup(id, 1); err != nil {
				b.Fatal(err)
			}
		}
		i++
	}
	var mcTx, bcTx int
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		mc, err := net.Multicast(1, net.Root(), broadcast.Options{})
		if err != nil || !mc.Completed {
			b.Fatalf("multicast failed: %v %s", err, mc)
		}
		bc, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil || !bc.Completed {
			b.Fatalf("broadcast failed: %v %s", err, bc)
		}
		mcTx, bcTx = mc.Transmissions, bc.Transmissions
	}
	b.ReportMetric(float64(mcTx), "mc-tx")
	b.ReportMetric(float64(bcTx), "bc-tx")
}

// BenchmarkRobustness measures delivery ratios under a 10% failure trace
// at n=500 for both protocols.
func BenchmarkRobustness(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	horizon := 2 * (net.Stats().BackboneSize - 1)
	var fails []broadcast.NodeFailure
	for _, f := range workload.FailureTrace(net.Graph(), net.Root(), 0.1, horizon, 99) {
		fails = append(fails, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
	}
	var cff, dfo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc, err := net.Broadcast(net.Root(), broadcast.Options{Failures: fails})
		if err != nil {
			b.Fatal(err)
		}
		md, err := net.BroadcastDFO(net.Root(), broadcast.Options{Failures: fails})
		if err != nil {
			b.Fatal(err)
		}
		cff, dfo = mc.DeliveryRatio(), md.DeliveryRatio()
	}
	b.ReportMetric(cff, "cff-delivery")
	b.ReportMetric(dfo, "dfo-delivery")
}

// BenchmarkReconfig measures Theorems 2/3: the cost of one node-move-in
// and one node-move-out on a 500-node network (structure + slot repair).
func BenchmarkReconfig(b *testing.B) {
	// One shared network; every iteration joins a fresh node next to the
	// root and (for move-out) removes it again, so the structure stays at
	// its paper-scale size without rebuilding per iteration.
	b.Run("move-in", func(b *testing.B) {
		net := mustNetwork(b, 1, 10, 500)
		anchor := net.Root()
		nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
		var rounds int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := graph.NodeID(100000 + i)
			pre := net.Stats()
			if err := net.Join(id, nbrs); err != nil {
				b.Fatal(err)
			}
			post := net.Stats()
			rounds = post.StructuralRounds - pre.StructuralRounds + post.SlotRounds - pre.SlotRounds
			b.StopTimer()
			if err := net.Leave(id); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(rounds), "maint-rounds")
	})
	b.Run("move-out", func(b *testing.B) {
		net := mustNetwork(b, 1, 10, 500)
		anchor := net.Root()
		nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
		var rounds int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			id := graph.NodeID(200000 + i)
			if err := net.Join(id, nbrs); err != nil {
				b.Fatal(err)
			}
			pre := net.Stats()
			b.StartTimer()
			if err := net.Leave(id); err != nil {
				b.Fatal(err)
			}
			post := net.Stats()
			rounds = post.StructuralRounds - pre.StructuralRounds + post.SlotRounds - pre.SlotRounds
		}
		b.ReportMetric(float64(rounds), "maint-rounds")
	})
}

// BenchmarkAreas repeats the Figure 8 measurement on the paper's three
// region scales at n=500.
func BenchmarkAreas(b *testing.B) {
	for _, side := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("side=%d", side), func(b *testing.B) {
			net := mustNetwork(b, 1, side, 500)
			var cff, dfo int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc, err := net.Broadcast(net.Root(), broadcast.Options{})
				if err != nil || !mc.Completed {
					b.Fatalf("broadcast failed: %v %s", err, mc)
				}
				md, err := net.BroadcastDFO(net.Root(), broadcast.Options{})
				if err != nil || !md.Completed {
					b.Fatalf("broadcast failed: %v %s", err, md)
				}
				cff, dfo = mc.CompletionRound, md.CompletionRound
			}
			b.ReportMetric(float64(cff), "cff-rounds")
			b.ReportMetric(float64(dfo), "dfo-rounds")
		})
	}
}

// BenchmarkAblationAlg1VsAlg2 compares the two flooding algorithms at
// n=500.
func BenchmarkAblationAlg1VsAlg2(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	var a1, a2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1, err := net.BroadcastCFF(net.Root(), broadcast.Options{})
		if err != nil || !m1.Completed {
			b.Fatalf("alg1 failed: %v %s", err, m1)
		}
		m2, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil || !m2.Completed {
			b.Fatalf("alg2 failed: %v %s", err, m2)
		}
		a1, a2 = m1.CompletionRound, m2.CompletionRound
	}
	b.ReportMetric(float64(a1), "alg1-rounds")
	b.ReportMetric(float64(a2), "alg2-rounds")
}

// BenchmarkAblationSlotCondition compares the paper's literal l-slot
// condition with the strict one: resulting Delta and delivery ratio.
func BenchmarkAblationSlotCondition(b *testing.B) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(1, 10, 500))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cond timeslot.Condition
	}{
		{"paper", timeslot.ConditionPaper},
		{"strict", timeslot.ConditionStrict},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net, err := core.Build(d.Graph(), core.Config{SlotCondition: tc.cond})
			if err != nil {
				b.Fatal(err)
			}
			var delta int
			var delivery float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := net.Broadcast(net.Root(), broadcast.Options{})
				if err != nil {
					b.Fatal(err)
				}
				delta = net.Stats().Delta
				delivery = m.DeliveryRatio()
			}
			b.ReportMetric(float64(delta), "Delta")
			b.ReportMetric(delivery, "delivery")
		})
	}
}

// BenchmarkConstruction times pure self-construction (node-move-in for all
// nodes plus slot assignment) at each size — the substrate cost behind
// every figure.
func BenchmarkConstruction(b *testing.B) {
	for _, n := range paperSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := workload.IncrementalConnected(workload.PaperConfig(1, 10, n))
			if err != nil {
				b.Fatal(err)
			}
			g := d.Graph()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(g, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGather measures the convergecast extension at n=500: exact
// aggregation rounds and awake cost.
func BenchmarkGather(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	values := make(map[graph.NodeID]int64, 500)
	var want int64
	for _, id := range net.CNet().Tree().Nodes() {
		values[id] = int64(id)
		want += int64(id)
	}
	var rounds, awake int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := net.Gather(values, gather.Options{})
		if err != nil || m.Sum != want {
			b.Fatalf("gather failed: %v %s", err, m)
		}
		rounds, awake = m.Rounds, m.MaxAwake
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(awake), "max-awake")
}

// BenchmarkSkewGuard measures delivery under clock skew 1 with and
// without guard slots at n=500.
func BenchmarkSkewGuard(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	skew := make(map[graph.NodeID]int)
	for i, id := range net.CNet().Tree().Nodes() {
		skew[id] = i%3 - 1
	}
	for _, guard := range []int{1, 3} {
		b.Run(fmt.Sprintf("guard=%d", guard), func(b *testing.B) {
			plan, err := broadcast.ICFFPlanGuarded(net.Slots(), net.Root(), 1, guard)
			if err != nil {
				b.Fatal(err)
			}
			var delivery float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := plan.Run(net.Graph(), broadcast.Options{Skew: skew})
				if err != nil {
					b.Fatal(err)
				}
				delivery = m.DeliveryRatio()
			}
			b.ReportMetric(delivery, "delivery")
		})
	}
}

// BenchmarkFlooding measures the unstructured blind-flooding baseline at
// n=500 against CFF.
func BenchmarkFlooding(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	var del float64
	var coll int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := broadcast.RunPFlood(net.Graph(), net.Root(), broadcast.PFloodOptions{Seed: 1, Forward: 1})
		if err != nil {
			b.Fatal(err)
		}
		del, coll = m.DeliveryRatio(), m.Collisions
	}
	b.ReportMetric(del, "delivery")
	b.ReportMetric(float64(coll), "collisions")
}

// BenchmarkDiscovery measures the randomized neighbor-discovery handshake
// for a mid-network joiner at n=500.
func BenchmarkDiscovery(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	g := net.Graph()
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := discovery.Run(g, 250, discovery.Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkLifetime measures the energy extension: epochs to first node
// death for both protocols at n=500.
func BenchmarkLifetime(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	model := energy.DefaultModel()
	var cffLife, dfoLife int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cff, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil {
			b.Fatal(err)
		}
		dfo, err := net.BroadcastDFO(net.Root(), broadcast.Options{})
		if err != nil {
			b.Fatal(err)
		}
		epoch := dfo.ScheduleLen
		cffLife, _ = energy.Lifetime(model, 1e5, cff.Listens, cff.Transmits, epoch, 1<<30)
		dfoLife, _ = energy.Lifetime(model, 1e5, dfo.Listens, dfo.Transmits, epoch, 1<<30)
	}
	b.ReportMetric(float64(cffLife), "cff-epochs")
	b.ReportMetric(float64(dfoLife), "dfo-epochs")
}

// BenchmarkHarnessQuick runs the whole experiment catalog at quick scale,
// guarding against regressions in any experiment path.
func BenchmarkHarnessQuick(b *testing.B) {
	p := expt.Quick()
	for i := 0; i < b.N; i++ {
		for _, e := range expt.Catalog() {
			if _, err := e.Run(p); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// --- PR2 scaling benchmarks: grid index vs all-pairs baselines --------------

// scaledConfig grows the region with n so the paper's density (500 nodes on
// a 10x10-unit square) is held constant past paper sizes.
func scaledConfig(seed int64, n int) workload.Config {
	side := int(math.Sqrt(float64(n)/5) + 0.5)
	if side < 4 {
		side = 4
	}
	return workload.PaperConfig(seed, side, n)
}

// scaleSizes are the node counts for the construction and churn scaling
// benchmarks: paper scale, 4x, and 20x.
var scaleSizes = []int{500, 2000, 10000}

// BenchmarkUDGBuild times unit-disk-graph construction from a fixed point
// set: the spatial-grid path (including building the grid itself each
// iteration) against the all-pairs baseline.
func BenchmarkUDGBuild(b *testing.B) {
	for _, n := range scaleSizes {
		cfg := scaledConfig(1, n)
		d, err := workload.IncrementalConnected(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/grid", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh Deployment per iteration so the timing includes
				// building the grid index, not just querying a warm one.
				dd := &geom.Deployment{Region: d.Region, Range: d.Range, Pos: d.Pos}
				if g := dd.Graph(); g.NumNodes() != n {
					b.Fatal("bad graph")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/allpairs", n), func(b *testing.B) {
			if testing.Short() && n > 500 {
				b.Skip("all-pairs baseline at scale: skipped in -short mode")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := d.GraphAllPairs(); g.NumNodes() != n {
					b.Fatal("bad graph")
				}
			}
		})
	}
}

// BenchmarkChurnReplay times generating a 200-event churn trace: the
// incremental UDGState path against the from-scratch all-pairs baseline.
// Both include the initial placement, which the grid also accelerates.
func BenchmarkChurnReplay(b *testing.B) {
	const steps = 200
	for _, n := range scaleSizes[:2] {
		cfg := scaledConfig(1, n)
		b.Run(fmt.Sprintf("n=%d/grid", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ev, err := workload.ChurnTrace(cfg, steps, 0.4); err != nil || len(ev) != steps {
					b.Fatalf("churn trace: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/allpairs", n), func(b *testing.B) {
			if testing.Short() && n > 500 {
				b.Skip("all-pairs baseline at scale: skipped in -short mode")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ev, err := workload.ChurnTraceAllPairs(cfg, steps, 0.4); err != nil || len(ev) != steps {
					b.Fatalf("churn trace: %v", err)
				}
			}
		})
	}
}

// BenchmarkMobilityReplay times generating a 100-move mobility trace,
// incremental vs all-pairs.
func BenchmarkMobilityReplay(b *testing.B) {
	const moves = 100
	for _, n := range scaleSizes[:2] {
		cfg := scaledConfig(1, n)
		b.Run(fmt.Sprintf("n=%d/grid", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ev, err := workload.MobilityTrace(cfg, moves, 2); err != nil || len(ev) != 2*moves {
					b.Fatalf("mobility trace: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/allpairs", n), func(b *testing.B) {
			if testing.Short() && n > 500 {
				b.Skip("all-pairs baseline at scale: skipped in -short mode")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ev, err := workload.MobilityTraceAllPairs(cfg, moves, 2); err != nil || len(ev) != 2*moves {
					b.Fatalf("mobility trace: %v", err)
				}
			}
		})
	}
}

// BenchmarkNeighborsCached measures adjacency reads on an unmutated graph —
// the traversal hot path. With the sorted-adjacency cache this must be
// allocation-free (asserted by TestNeighborsAndNodesAllocationFree; the
// -benchmem column here shows the same at paper scale).
func BenchmarkNeighborsCached(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	g := net.Graph()
	nodes := g.Nodes()
	for _, id := range nodes {
		_ = g.Neighbors(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, id := range nodes {
			total += len(g.Neighbors(id))
		}
	}
	if total == 0 {
		b.Fatal("no adjacency read")
	}
}

// BenchmarkSteadyStateBroadcast measures repeated CFF broadcasts on a fixed
// 500-node network — the steady-state hot path whose per-receiver
// interference-set and slot-uniqueness work now runs on reused buffers
// (track the -benchmem column).
func BenchmarkSteadyStateBroadcast(b *testing.B) {
	net := mustNetwork(b, 1, 10, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil || !m.Completed {
			b.Fatalf("broadcast failed: %v %s", err, m)
		}
	}
}
