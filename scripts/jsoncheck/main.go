// Command jsoncheck fails when any argument file is not valid JSON; CI
// uses it to assert that exported Chrome traces parse without depending on
// tools outside the Go toolchain.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s is not valid JSON\n", path)
			os.Exit(1)
		}
	}
}
