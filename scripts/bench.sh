#!/usr/bin/env bash
# bench.sh — run the PR2 scaling benchmarks (grid index and allocation-free
# adjacency vs the retained all-pairs baselines) and record the numbers in
# BENCH_PR2.json, including the derived churn/mobility replay speedups at
# n=2000 the performance doc cites. Then run the engine benchmarks (kernel
# worker sweep vs the retained reference loop) under a pinned GOMAXPROCS
# and record BENCH_PR5.json (kernel-vs-reference speedups) and
# BENCH_PR7.json (parallel-deliver worker scaling: wN-vs-w1 ratios across
# BenchmarkEngineRun plus the BenchmarkEngineScale n∈{200k, 1M} sparse
# legs, with the host CPU count so single-core numbers read honestly).
#
# Usage:
#   scripts/bench.sh               # default -benchtime 2x
#   BENCHTIME=10x scripts/bench.sh # more iterations, steadier numbers
#   OUT=/tmp/b.json scripts/bench.sh
#   ENGINE_GOMAXPROCS=8 scripts/bench.sh  # pinned procs for the engine legs
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_PR2.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Host honesty metadata, stamped into every BENCH_*.json: the CPU count
# qualifies every derived ratio (on cpus=1 a workers=N "speedup" is pure
# coordination overhead — `nettool perf report` refuses to call it a
# speedup), and the 1-minute load average flags a noisy host.
CPUS="$(nproc)"
LOADAVG="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"

echo "running benchmarks (-benchtime $BENCHTIME)..." >&2
go test -run '^$' \
  -bench 'UDGBuild|ChurnReplay|MobilityReplay|NeighborsCached|SteadyStateBroadcast' \
  -benchtime "$BENCHTIME" -benchmem . | tee "$RAW" >&2

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" \
  -v cpus="$CPUS" -v procs="${GOMAXPROCS:-$CPUS}" -v loadavg="$LOADAVG" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
    name = $1; iters = $2; ns = $3
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    n++
    names[n] = name; its[n] = iters; nss[n] = ns
    bs[n] = bytes; as[n] = allocs
    ns_by_name[name] = ns
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cpus\": %s,\n", cpus
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"loadavg\": %s,\n", loadavg
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"speedups\": {\n"
    churn_g = ns_by_name["BenchmarkChurnReplay/n=2000/grid"]
    churn_a = ns_by_name["BenchmarkChurnReplay/n=2000/allpairs"]
    mob_g   = ns_by_name["BenchmarkMobilityReplay/n=2000/grid"]
    mob_a   = ns_by_name["BenchmarkMobilityReplay/n=2000/allpairs"]
    udg_g   = ns_by_name["BenchmarkUDGBuild/n=10000/grid"]
    udg_a   = ns_by_name["BenchmarkUDGBuild/n=10000/allpairs"]
    sep = ""
    if (churn_g > 0 && churn_a > 0) { printf "%s    \"churn_replay_n2000\": %.2f", sep, churn_a / churn_g; sep = ",\n" }
    if (mob_g > 0 && mob_a > 0)     { printf "%s    \"mobility_replay_n2000\": %.2f", sep, mob_a / mob_g; sep = ",\n" }
    if (udg_g > 0 && udg_a > 0)     { printf "%s    \"udg_build_n10000\": %.2f", sep, udg_a / udg_g; sep = ",\n" }
    printf "\n  }\n}\n"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

# --- PR5: radio-engine kernel vs reference loop -----------------------------
# The engine benchmarks run under a fixed GOMAXPROCS so the workers=N legs
# are meaningful on any host; determinism is not at stake (results are
# byte-identical at any worker count), only wall-clock time is measured.
# One BenchmarkEngineRun pass feeds both BENCH_PR5.json (below) and the
# PR7 scaling report (further below) — the reference legs dominate the
# runtime, so they are not run twice.
ENGINE_GOMAXPROCS="${ENGINE_GOMAXPROCS:-4}"
OUT5="${OUT5:-BENCH_PR5.json}"
RAW5="$(mktemp)"
trap 'rm -f "$RAW" "$RAW5"' EXIT

echo "running engine benchmarks (GOMAXPROCS=$ENGINE_GOMAXPROCS, -benchtime $BENCHTIME)..." >&2
GOMAXPROCS="$ENGINE_GOMAXPROCS" go test -run '^$' \
  -bench '^BenchmarkEngineRun$' \
  -benchtime "$BENCHTIME" -benchmem -timeout 90m ./internal/radio | tee "$RAW5" >&2

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" \
  -v procs="$ENGINE_GOMAXPROCS" -v cpus="$CPUS" -v loadavg="$LOADAVG" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
    name = $1; iters = $2; ns = $3
    # go test appends a "-GOMAXPROCS" suffix when procs != 1; strip it so
    # the speedup lookups below work at any pinned worker count.
    sub(/-[0-9]+$/, "", name)
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    n++
    names[n] = name; its[n] = iters; nss[n] = ns
    bs[n] = bytes; as[n] = allocs
    ns_by_name[name] = ns
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cpus\": %s,\n", cpus
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"loadavg\": %s,\n", loadavg
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"speedups\": {\n"
    sep = ""
    cpuw = sprintf("workers=%s", procs)
    for (sz_i = 1; sz_i <= 3; sz_i++) {
        sz = (sz_i == 1 ? 2000 : (sz_i == 2 ? 10000 : 50000))
        for (tp_i = 1; tp_i <= 2; tp_i++) {
            tp = (tp_i == 1 ? "sparse" : "dense")
            base = sprintf("BenchmarkEngineRun/n=%d/%s", sz, tp)
            ref  = ns_by_name[base "/reference"]
            w1   = ns_by_name[base "/workers=1"]
            wp   = ns_by_name[base "/" cpuw]
            if (ref > 0 && wp > 0) {
                printf "%s    \"engine_run_n%d_%s_kernel_w%s_vs_reference\": %.2f", sep, sz, tp, procs, ref / wp
                sep = ",\n"
            }
            if (ref > 0 && w1 > 0) {
                printf "%s    \"engine_run_n%d_%s_kernel_w1_vs_reference\": %.2f", sep, sz, tp, ref / w1
                sep = ",\n"
            }
            if (w1 > 0 && wp > 0) {
                printf "%s    \"engine_run_n%d_%s_w%s_vs_w1\": %.2f", sep, sz, tp, procs, w1 / wp
                sep = ",\n"
            }
        }
    }
    printf "\n  }\n}\n"
}
' "$RAW5" > "$OUT5"

echo "wrote $OUT5" >&2

# --- PR7: parallel-deliver worker scaling -----------------------------------
# BenchmarkEngineScale covers the sizes the parallel-deliver kernel exists
# for (n = 200k and 10⁶, sparse; no reference leg — the quadratic loop
# would take hours at 10⁶). Its raw output joins the EngineRun sweep
# already captured above, and the derived wN-vs-w1 ratios land in
# BENCH_PR7.json. "cpus" records the host's CPU count: on a single-CPU
# container the ratios hover at or below 1× (pure coordination overhead,
# no parallel hardware) and must be read alongside that field.
OUT7="${OUT7:-BENCH_PR7.json}"
RAW7="$(mktemp)"
trap 'rm -f "$RAW" "$RAW5" "$RAW7"' EXIT

echo "running engine scale benchmarks (GOMAXPROCS=$ENGINE_GOMAXPROCS, -benchtime $BENCHTIME)..." >&2
GOMAXPROCS="$ENGINE_GOMAXPROCS" go test -run '^$' \
  -bench '^BenchmarkEngineScale$' \
  -benchtime "$BENCHTIME" -benchmem -timeout 90m ./internal/radio | tee "$RAW7" >&2

cat "$RAW5" "$RAW7" | awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" \
  -v procs="$ENGINE_GOMAXPROCS" -v cpus="$CPUS" -v loadavg="$LOADAVG" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
    name = $1; iters = $2; ns = $3
    sub(/-[0-9]+$/, "", name)
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    n++
    names[n] = name; its[n] = iters; nss[n] = ns
    bs[n] = bytes; as[n] = allocs
    ns_by_name[name] = ns
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cpus\": %s,\n", cpus
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"loadavg\": %s,\n", loadavg
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"speedups\": {\n"
    sep = ""
    nb = split("EngineRun/n=2000/sparse EngineRun/n=2000/dense " \
               "EngineRun/n=10000/sparse EngineRun/n=10000/dense " \
               "EngineRun/n=50000/sparse EngineRun/n=50000/dense " \
               "EngineScale/n=200000/sparse EngineScale/n=1000000/sparse", bases, " ")
    for (b_i = 1; b_i <= nb; b_i++) {
        base = "Benchmark" bases[b_i]
        key = base
        sub(/^BenchmarkEngine(Run|Scale)\//, "", key)
        gsub(/[\/=]/, "_", key)
        w1 = ns_by_name[base "/workers=1"]
        for (w = 2; w <= 4; w += 2) {
            wn = ns_by_name[base sprintf("/workers=%d", w)]
            if (w1 > 0 && wn > 0) {
                printf "%s    \"%s_w%d_vs_w1\": %.2f", sep, key, w, w1 / wn
                sep = ",\n"
            }
        }
    }
    printf "\n  }\n}\n"
}
' > "$OUT7"

echo "wrote $OUT7" >&2
