#!/usr/bin/env bash
# bench.sh — run the PR2 scaling benchmarks (grid index and allocation-free
# adjacency vs the retained all-pairs baselines) and record the numbers in
# BENCH_PR2.json, including the derived churn/mobility replay speedups at
# n=2000 the performance doc cites. Then run the PR5 engine-kernel
# benchmarks (three-phase kernel vs the retained reference loop, at 1 and
# ENGINE_GOMAXPROCS workers) and record BENCH_PR5.json with the
# kernel-vs-reference speedups the acceptance criteria cite.
#
# Usage:
#   scripts/bench.sh               # default -benchtime 2x
#   BENCHTIME=10x scripts/bench.sh # more iterations, steadier numbers
#   OUT=/tmp/b.json scripts/bench.sh
#   ENGINE_GOMAXPROCS=8 scripts/bench.sh  # worker count for the PR5 leg
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_PR2.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (-benchtime $BENCHTIME)..." >&2
go test -run '^$' \
  -bench 'UDGBuild|ChurnReplay|MobilityReplay|NeighborsCached|SteadyStateBroadcast' \
  -benchtime "$BENCHTIME" -benchmem . | tee "$RAW" >&2

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
    name = $1; iters = $2; ns = $3
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    n++
    names[n] = name; its[n] = iters; nss[n] = ns
    bs[n] = bytes; as[n] = allocs
    ns_by_name[name] = ns
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"speedups\": {\n"
    churn_g = ns_by_name["BenchmarkChurnReplay/n=2000/grid"]
    churn_a = ns_by_name["BenchmarkChurnReplay/n=2000/allpairs"]
    mob_g   = ns_by_name["BenchmarkMobilityReplay/n=2000/grid"]
    mob_a   = ns_by_name["BenchmarkMobilityReplay/n=2000/allpairs"]
    udg_g   = ns_by_name["BenchmarkUDGBuild/n=10000/grid"]
    udg_a   = ns_by_name["BenchmarkUDGBuild/n=10000/allpairs"]
    sep = ""
    if (churn_g > 0 && churn_a > 0) { printf "%s    \"churn_replay_n2000\": %.2f", sep, churn_a / churn_g; sep = ",\n" }
    if (mob_g > 0 && mob_a > 0)     { printf "%s    \"mobility_replay_n2000\": %.2f", sep, mob_a / mob_g; sep = ",\n" }
    if (udg_g > 0 && udg_a > 0)     { printf "%s    \"udg_build_n10000\": %.2f", sep, udg_a / udg_g; sep = ",\n" }
    printf "\n  }\n}\n"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

# --- PR5: radio-engine kernel vs reference loop -----------------------------
# The engine benchmarks run under a fixed GOMAXPROCS so the workers=N leg is
# meaningful on any host; determinism is not at stake (results are
# byte-identical at any worker count), only wall-clock time is measured.
ENGINE_GOMAXPROCS="${ENGINE_GOMAXPROCS:-4}"
OUT5="${OUT5:-BENCH_PR5.json}"
RAW5="$(mktemp)"
trap 'rm -f "$RAW" "$RAW5"' EXIT

echo "running engine benchmarks (GOMAXPROCS=$ENGINE_GOMAXPROCS, -benchtime $BENCHTIME)..." >&2
GOMAXPROCS="$ENGINE_GOMAXPROCS" go test -run '^$' \
  -bench '^BenchmarkEngineRun$' \
  -benchtime "$BENCHTIME" -benchmem ./internal/radio | tee "$RAW5" >&2

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" -v procs="$ENGINE_GOMAXPROCS" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
    name = $1; iters = $2; ns = $3
    # go test appends a "-GOMAXPROCS" suffix when procs != 1; strip it so
    # the speedup lookups below work at any pinned worker count.
    sub(/-[0-9]+$/, "", name)
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    n++
    names[n] = name; its[n] = iters; nss[n] = ns
    bs[n] = bytes; as[n] = allocs
    ns_by_name[name] = ns
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", procs
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"speedups\": {\n"
    sep = ""
    cpuw = sprintf("workers=%s", procs)
    for (sz_i = 1; sz_i <= 3; sz_i++) {
        sz = (sz_i == 1 ? 2000 : (sz_i == 2 ? 10000 : 50000))
        for (tp_i = 1; tp_i <= 2; tp_i++) {
            tp = (tp_i == 1 ? "sparse" : "dense")
            base = sprintf("BenchmarkEngineRun/n=%d/%s", sz, tp)
            ref  = ns_by_name[base "/reference"]
            w1   = ns_by_name[base "/workers=1"]
            wp   = ns_by_name[base "/" cpuw]
            if (ref > 0 && wp > 0) {
                printf "%s    \"engine_run_n%d_%s_kernel_w%s_vs_reference\": %.2f", sep, sz, tp, procs, ref / wp
                sep = ",\n"
            }
            if (ref > 0 && w1 > 0) {
                printf "%s    \"engine_run_n%d_%s_kernel_w1_vs_reference\": %.2f", sep, sz, tp, ref / w1
                sep = ",\n"
            }
            if (w1 > 0 && wp > 0) {
                printf "%s    \"engine_run_n%d_%s_w%s_vs_w1\": %.2f", sep, sz, tp, procs, w1 / wp
                sep = ",\n"
            }
        }
    }
    printf "\n  }\n}\n"
}
' "$RAW5" > "$OUT5"

echo "wrote $OUT5" >&2
