#!/bin/sh
# CI gate: formatting, vet, build, race-enabled tests with a coverage floor
# (scripts/coverage_baseline.txt), a short fuzz smoke, the dynlint static
# analyzer (docs/static-analysis.md), and a single-iteration benchmark
# smoke (docs/performance.md). Run from anywhere inside the repository; any
# failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^\.' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== generated artifacts"
# Build outputs must never be committed: coverage profiles, flight
# recordings, compiled test binaries, pprof profiles. .gitignore keeps
# them out of "git add ."; this guard catches a force-add.
tracked=$(git ls-files -- 'coverage.out' '*.dsfr' '*.test' '*.prof' '*.pprof')
if [ -n "$tracked" ]; then
    echo "generated artifacts are tracked:" >&2
    echo "$tracked" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (with coverage)"
go test -race -covermode=atomic -coverprofile=coverage.out ./...

echo "== coverage gate"
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
baseline=$(cat scripts/coverage_baseline.txt)
echo "total coverage ${total}% (baseline ${baseline}%)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 >= b+0) }' || {
    echo "coverage ${total}% fell below the recorded baseline ${baseline}%" >&2
    exit 1
}

echo "== engine equivalence (workers matrix)"
# The determinism proof for the shard-parallel radio kernel: the
# equivalence suites must hold under -race at both a single-CPU schedule
# and a genuinely parallel one (docs/architecture.md, "Determinism by
# construction"). The tests sweep engine worker counts 1/2/3/8/NumCPU,
# and the EngineWorkers pattern pulls in TestEngineWorkersLargeSmoke —
# the fast n=200k sparse run that exercises the parallel deliver phase,
# counter RNG streams and Seq stitch at scale under the race detector.
for procs in 1 4; do
    echo "-- GOMAXPROCS=$procs"
    GOMAXPROCS="$procs" go test -race -run 'EngineEquivalence|EngineWorkers|RunByteIdentical' \
        ./internal/radio ./internal/broadcast
    # The scenario corpus re-runs every .dsn (testdata + examples) through
    # the live stack with record/replay self-verification — end-to-end
    # determinism under both schedules (docs/scenarios.md).
    GOMAXPROCS="$procs" go test -race -run 'TestScenarioCorpus|TestScenarioWorkerDeterminism' \
        ./internal/scenario
done

echo "== fuzz smoke"
# A few seconds per fuzzer: keeps the harnesses compiling and catches
# shallow regressions; long fuzz runs stay manual.
go test -run '^$' -fuzz '^FuzzNetioRead$' -fuzztime 5s ./internal/netio
go test -run '^$' -fuzz '^FuzzFrameDecode$' -fuzztime 5s ./internal/netio/frame
go test -run '^$' -fuzz '^FuzzRecordingDecode$' -fuzztime 5s ./internal/flight
go test -run '^$' -fuzz '^FuzzEngineEquivalence$' -fuzztime 5s ./internal/radio
go test -run '^$' -fuzz '^FuzzScenarioParse$' -fuzztime 5s ./internal/scenario
# The go tool ignores testdata, so the lint fixtures only compile through
# the lint loader: run the loader test explicitly so fixtures can't bit-rot.
go test -run '^TestFixturesLoad$' -count=1 ./internal/lint

echo "== replay smoke"
# Record a 200-node run with mid-broadcast failures, then replay it
# offline: the paper-invariant verifier must pass and the Chrome trace
# export must be valid JSON (docs/observability.md, "Tracing & flight
# recording").
replay_dir=$(mktemp -d)
trap 'rm -rf "$replay_dir"' EXIT
go run ./cmd/dynsim -n 200 -side 10 -seed 7 -failfrac 0.1 -record "$replay_dir/run.dsfr" > /dev/null
go run ./cmd/nettool replay -chrome-trace "$replay_dir/trace.json" "$replay_dir/run.dsfr" | tee "$replay_dir/replay.txt"
grep -q 'verifier: PASS' "$replay_dir/replay.txt"
go run ./scripts/jsoncheck "$replay_dir/trace.json"

echo "== scenario smoke"
# One scenario recorded live, then re-verified offline from the .dsfr
# alone: the third entry point of the scenario DSL (after go test and
# dynsim -scenario). A negative fixture must fail with exit 1 — the
# corpus proves assertions can pass; this proves they can fail.
go build -o "$replay_dir/nettool" ./cmd/nettool
"$replay_dir/nettool" scenario run testdata/scenarios/positive/sparse-rgg-icff.dsn \
    -record "$replay_dir/scenario.dsfr" > /dev/null
"$replay_dir/nettool" scenario verify testdata/scenarios/positive/sparse-rgg-icff.dsn \
    "$replay_dir/scenario.dsfr" > /dev/null
if "$replay_dir/nettool" scenario run testdata/scenarios/negative/violated-round-bound.dsn > /dev/null; then
    echo "negative scenario fixture unexpectedly passed" >&2
    exit 1
fi
echo "scenario record/verify round-trip OK, negative fixture fails as expected"

echo "== dist runtime smoke"
# The distributed actor runtime must reproduce the kernel byte for byte
# (docs/architecture.md, "Distributed runtime"): run one corpus scenario
# under all three transports — in-process kernel, goroutine fleet, and one
# OS process per node via dnode — and require identical .dsfr recordings,
# then replay-verify the distributed recording offline like any other.
go build -o "$replay_dir/dynsim" ./cmd/dynsim
go build -o "$replay_dir/dnode" ./cmd/dnode
dist_dsn=testdata/scenarios/positive/dist-runtime-icff.dsn
"$replay_dir/dynsim" -scenario "$dist_dsn" -runtime kernel \
    -record "$replay_dir/dist_kernel.dsfr" > /dev/null
"$replay_dir/dynsim" -scenario "$dist_dsn" -runtime dist \
    -record "$replay_dir/dist_local.dsfr" > /dev/null
"$replay_dir/dynsim" -scenario "$dist_dsn" -dnode "$replay_dir/dnode" \
    -record "$replay_dir/dist_proc.dsfr" > /dev/null
cmp "$replay_dir/dist_kernel.dsfr" "$replay_dir/dist_local.dsfr"
cmp "$replay_dir/dist_kernel.dsfr" "$replay_dir/dist_proc.dsfr"
"$replay_dir/nettool" scenario verify "$dist_dsn" "$replay_dir/dist_proc.dsfr" > /dev/null
echo "kernel / goroutine-fleet / process-fleet recordings byte-identical"

echo "== dynlint"
# All analyzers, the contract checkers (progpurity/shardsafe/hotalloc)
# included: they are in lint.All, so the default run gates on them too.
go run ./cmd/dynlint ./...

echo "== bench smoke"
# One iteration of every benchmark, with the expensive all-pairs baselines
# skipped (-short): catches benchmarks that rot without paying for real
# measurement runs. scripts/bench.sh does the real runs.
go test -run '^$' -bench . -benchtime 1x -short ./...

echo "== bench regression gate"
# One small, fast EngineRun leg against the committed baseline
# (scripts/bench_baseline.json, regenerated with `nettool perf import`
# after an intentional perf change): warn past 15%, fail past 50% ns/op.
# The wide fail band absorbs CI host noise while still catching a kernel
# that got categorically slower (docs/performance.md, "Kernel
# introspection").
go test -run '^$' -bench '^BenchmarkEngineRun$/^n=2000$/^sparse$/^workers=1$' \
    -benchtime 5x ./internal/radio > "$replay_dir/bench_raw.txt"
go run ./cmd/nettool perf import -o "$replay_dir/bench_new.json" "$replay_dir/bench_raw.txt"
go run ./cmd/nettool perf diff -warn 15 -fail 50 \
    scripts/bench_baseline.json "$replay_dir/bench_new.json"

echo "CI OK"
