#!/bin/sh
# CI gate: formatting, vet, build, race-enabled tests with a coverage floor
# (scripts/coverage_baseline.txt), a short fuzz smoke, the dynlint static
# analyzer (docs/static-analysis.md), and a single-iteration benchmark
# smoke (docs/performance.md). Run from anywhere inside the repository; any
# failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^\.' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (with coverage)"
go test -race -covermode=atomic -coverprofile=coverage.out ./...

echo "== coverage gate"
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
baseline=$(cat scripts/coverage_baseline.txt)
echo "total coverage ${total}% (baseline ${baseline}%)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 >= b+0) }' || {
    echo "coverage ${total}% fell below the recorded baseline ${baseline}%" >&2
    exit 1
}

echo "== fuzz smoke"
# A few seconds of the netio reader fuzzer: keeps the harness compiling and
# catches shallow regressions; long fuzz runs stay manual.
go test -run '^$' -fuzz '^FuzzNetioRead$' -fuzztime 5s ./internal/netio

echo "== dynlint"
go run ./cmd/dynlint ./...

echo "== bench smoke"
# One iteration of every benchmark, with the expensive all-pairs baselines
# skipped (-short): catches benchmarks that rot without paying for real
# measurement runs. scripts/bench.sh does the real runs.
go test -run '^$' -bench . -benchtime 1x -short ./...

echo "CI OK"
