#!/bin/sh
# CI gate: formatting, vet, build, race-enabled tests, the dynlint static
# analyzer (docs/static-analysis.md), and a single-iteration benchmark
# smoke (docs/performance.md). Run from anywhere inside the repository; any
# failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^\.' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== dynlint"
go run ./cmd/dynlint ./...

echo "== bench smoke"
# One iteration of every benchmark, with the expensive all-pairs baselines
# skipped (-short): catches benchmarks that rot without paying for real
# measurement runs. scripts/bench.sh does the real runs.
go test -run '^$' -bench . -benchtime 1x -short ./...

echo "CI OK"
