// Command dnode is one actor node of the distributed runtime: it loads
// the same .dsn scenario file as the coordinator, deterministically
// rebuilds the identical deployment and broadcast plan, picks out its
// assigned node's Program, and serves it over the frame protocol — on
// stdin/stdout by default (the shape dist.ProcFleet expects, as wired by
// `dynsim -runtime dist -dnode`), or by dialing a TCP coordinator with
// -addr.
//
// Examples:
//
//	dnode -scenario run.dsn -node 7
//	dnode -scenario run.dsn -node 7 -addr 127.0.0.1:9000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynsens/internal/dist"
	"dynsens/internal/graph"
	"dynsens/internal/scenario"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "the .dsn scenario file the coordinator is running (required)")
		node         = flag.Int("node", -1, "node ID to serve (required)")
		addr         = flag.String("addr", "", "dial a TCP coordinator here instead of serving stdin/stdout")
	)
	flag.Parse()
	if err := run(*scenarioPath, *node, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "dnode: %v\n", err)
		os.Exit(1)
	}
}

func run(scenarioPath string, node int, addr string) error {
	if scenarioPath == "" || node < 0 {
		return fmt.Errorf("-scenario and -node are required")
	}
	s, err := scenario.Load(scenarioPath)
	if err != nil {
		return err
	}
	plan, _, err := scenario.BuildPlan(s)
	if err != nil {
		return err
	}
	id := graph.NodeID(node)
	prog := plan.Programs[id]
	if prog == nil {
		return fmt.Errorf("scenario %s has no program for node %d", s.Name(), id)
	}
	if addr != "" {
		return dist.DialNode(addr, id, prog)
	}
	// Stdio transport: the coordinator's ProcFleet owns both pipe ends and
	// the process lifecycle; the serve loop exits on stdin EOF or Halt.
	return dist.ServeNode(struct {
		io.Reader
		io.Writer
	}{os.Stdin, os.Stdout}, id, prog)
}
