// Command dynlint runs the repo's domain-specific static analyzers
// (internal/lint) over the module and reports findings.
//
// Usage:
//
//	dynlint [-json|-sarif] [-analyzers a,b] [-suppressions] [pattern ...]
//
// Patterns are package directories relative to the current directory;
// "./..." (the default) covers the whole module, "./internal/..." a
// subtree. -analyzers restricts the run to a comma-separated subset of
// the analyzers (-list prints the catalogue). -sarif emits a SARIF 2.1.0
// log for GitHub code scanning instead of plain text. -suppressions lists
// every //lint:ignore directive in the matched packages (the listing
// docs/static-analysis.md is generated from) and exits 0. The exit status
// is otherwise 0 when clean, 1 when findings were reported, 2 on a load
// error.
//
// Findings are suppressed per line with
//
//	//lint:ignore dynlint/<analyzer> <reason>
//
// See docs/static-analysis.md for the analyzer catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dynsens/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (GitHub code scanning)")
	sups := flag.Bool("suppressions", false, "list //lint:ignore directives in the matched packages and exit")
	sel := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("dynlint/%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*sel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynlint: %v\n", err)
		os.Exit(2)
	}

	if *sups {
		if err := listSuppressions(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "dynlint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	findings, err := run(flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynlint: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *sarifOut:
		doc, err := lint.SARIF(findings, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", doc)
	case *jsonOut:
		if findings == nil {
			findings = []lint.Finding{} // encode as [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "dynlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dynlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// listSuppressions prints every //lint:ignore directive in the matched
// packages as "file:line: dynlint/<analyzer>: <reason>" lines, relative to
// the working directory — the ground truth behind the suppression list in
// docs/static-analysis.md.
func listSuppressions(patterns []string) error {
	kept, cwd, err := load(patterns)
	if err != nil {
		return err
	}
	for _, r := range lint.SuppressionsIn(kept) {
		file := r.File
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d: dynlint/%s: %s\n", file, r.Line, r.Analyzer, r.Reason)
	}
	return nil
}

// selectAnalyzers resolves a comma-separated -analyzers value against the
// catalogue, defaulting to all.
func selectAnalyzers(sel string) ([]*lint.Analyzer, error) {
	if sel == "" {
		return lint.All, nil
	}
	byName := make(map[string]*lint.Analyzer, len(lint.All))
	var names []string
	for _, a := range lint.All {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// load resolves the module containing the working directory and returns
// the packages matching the patterns, plus the working directory for
// position rewriting.
func load(patterns []string) ([]*lint.Package, string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, "", err
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		return nil, "", err
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		return nil, "", err
	}
	var kept []*lint.Package
	for _, p := range pkgs {
		if matchAny(root, cwd, p.RelDir, patterns) {
			kept = append(kept, p)
		}
	}
	return kept, cwd, nil
}

// run loads the module containing the working directory, lints it, and
// keeps the findings matching the patterns. Positions are rewritten
// relative to the working directory for readable, clickable output.
func run(patterns []string, analyzers []*lint.Analyzer) ([]lint.Finding, error) {
	kept, cwd, err := load(patterns)
	if err != nil {
		return nil, err
	}
	findings := lint.Run(kept, analyzers)
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
	return findings, nil
}

// matchAny reports whether the package directory (relative to the module
// root) matches one of the ./dir or ./dir/... patterns (relative to cwd).
func matchAny(root, cwd, relDir string, patterns []string) bool {
	pkgDir := filepath.Join(root, relDir)
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
		}
		if pat == "" || pat == "." {
			pat = cwd
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			continue
		}
		if abs == pkgDir {
			return true
		}
		if recursive && strings.HasPrefix(pkgDir+string(filepath.Separator), abs+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
