package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/trace"
)

// runReplay loads a flight recording, runs the offline verifier, and
// serves the requested views. The bool result is the verifier verdict;
// the caller turns a FAIL into exit code 1 so CI can assert on it.
func runReplay(w io.Writer, path, chromePath string, timeline bool, span, whyMissed int) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	rec, err := flight.Decode(f)
	if err != nil {
		return false, fmt.Errorf("reading %s: %w", path, err)
	}

	h := rec.Header
	drop := ""
	if d := rec.Dropped(); d > 0 {
		drop = fmt.Sprintf(" (%d dropped by ring)", d)
	}
	if _, err := fmt.Fprintf(w, "recording: %s n=%d side=%d seed=%d channels=%d source=%d\ncontents: %d nodes, %d edges, %d deltas, %d phases, %d events%s\n",
		h.Protocol, h.N, h.Side, h.Seed, h.Channels, h.Source,
		len(rec.Nodes), len(rec.Edges), len(rec.Deltas), len(rec.Phases), len(rec.Events), drop); err != nil {
		return false, err
	}
	// The coin scheme decides which engine reproduces this run: a v1
	// recording's seeded outcomes only replay under the old serial engine
	// RNG, so the scheme is stated up front rather than silently assumed.
	if _, err := fmt.Fprintf(w, "rng-scheme: %s (format v%d)\n", h.RNGScheme, h.Version); err != nil {
		return false, err
	}

	rep := flight.Verify(rec)
	if err := rep.Write(w); err != nil {
		return false, err
	}

	if chromePath != "" {
		var buf bytes.Buffer
		if err := flight.WriteChromeTrace(&buf, rec); err != nil {
			return false, err
		}
		if !json.Valid(buf.Bytes()) {
			return false, fmt.Errorf("internal error: generated Chrome trace is not valid JSON")
		}
		if chromePath == "-" {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return false, err
			}
		} else {
			if err := os.WriteFile(chromePath, buf.Bytes(), 0o644); err != nil {
				return false, err
			}
			if _, err := fmt.Fprintf(w, "wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", chromePath); err != nil {
				return false, err
			}
		}
	}
	if timeline {
		if err := trace.RenderEvents(w, rec.Events, rec.Dropped()); err != nil {
			return false, err
		}
	}
	if span >= 0 {
		t := rec.Trace(span)
		if t == nil {
			return false, fmt.Errorf("no message with seq %d in the recording", span)
		}
		if err := t.WriteTree(w); err != nil {
			return false, err
		}
	}
	if whyMissed >= 0 {
		m, err := rec.WhyMissed(graph.NodeID(whyMissed))
		if err != nil {
			return false, err
		}
		if _, err := fmt.Fprintln(w, m); err != nil {
			return false, err
		}
	}
	return rep.Passed(), nil
}
