package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/flight"
	"dynsens/internal/netio"
	"dynsens/internal/workload"
)

// recordFixture writes a flight recording of one deterministic ICFF run to
// a temp file and returns its path with the network it ran on.
func recordFixture(t *testing.T, n int, seed int64, opts broadcast.Options) (string, *core.Network) {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.dsfr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := flight.NewWriter(f)
	fw.WriteHeader(flight.Header{
		Seed: seed, N: n, Side: 8, Channels: opts.Channels,
		Source: net.Root(), Protocol: "ICFF",
		LossRate: opts.LossRate, LossSeed: opts.LossSeed,
	})
	netio.RecordTopology(fw, net)
	opts.Flight = fw
	if _, err := net.Broadcast(net.Root(), opts); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return path, net
}

func TestReplayCleanRun(t *testing.T) {
	path, _ := recordFixture(t, 40, 3, broadcast.Options{Channels: 1})
	chrome := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	ok, err := runReplay(&sb, path, chrome, true, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !ok {
		t.Fatalf("verifier failed:\n%s", out)
	}
	for _, want := range []string{
		"recording: ICFF n=40", "verifier: PASS", "wrote Chrome trace",
		"rng-scheme: " + flight.RNGSchemeCounter + " (format v2)",
		"trace seq=1", // span view
		"r1",          // timeline rows
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("exported Chrome trace is not valid JSON")
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("Chrome trace has no events")
	}
}

// TestReplayWhyMissed is the acceptance check for hop localization: on a
// lossy run, -why-missed for an unreached node must name the first failed
// hop on its delivery path.
func TestReplayWhyMissed(t *testing.T) {
	// High loss with a fixed seed leaves part of the 40-node network
	// unreached; find a node the run missed and ask the replayer why.
	opts := broadcast.Options{Channels: 1, LossRate: 0.85, LossSeed: 4}
	path, net := recordFixture(t, 40, 3, opts)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Footer.Received == rec.Footer.Audience {
		t.Fatalf("lossy run still delivered to all %d nodes; raise the loss rate", rec.Footer.Audience)
	}
	tr := rec.Trace(1)
	if tr == nil {
		t.Fatal("no payload trace")
	}
	holders := tr.Holders()
	missed := -1
	for _, id := range net.Graph().Nodes() {
		if !holders[id] {
			missed = int(id)
			break
		}
	}
	if missed < 0 {
		t.Fatal("every node holds the payload despite Received < Audience")
	}
	var sb strings.Builder
	ok, err := runReplay(&sb, path, "", false, -1, missed)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("verifier failed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "first broken hop") {
		t.Fatalf("-why-missed did not localize a hop:\n%s", sb.String())
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := runReplay(&strings.Builder{}, filepath.Join(t.TempDir(), "nope.dsfr"), "", false, -1, -1); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.dsfr")
	if err := os.WriteFile(bad, []byte("not a recording"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runReplay(&strings.Builder{}, bad, "", false, -1, -1); err == nil {
		t.Fatal("garbage accepted")
	}
	path, _ := recordFixture(t, 20, 3, broadcast.Options{Channels: 1})
	if _, err := runReplay(&strings.Builder{}, path, "", false, 999, -1); err == nil {
		t.Fatal("phantom span seq accepted")
	}
}
