package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunJSONAndDot(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "net.json")
	dotPath := filepath.Join(dir, "net.dot")
	svgPath := filepath.Join(dir, "net.svg")
	if err := run(40, 8, 1, 2, jsonPath, dotPath, svgPath, false, 40, 16); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), "\"nodes\"") {
		t.Fatal("JSON missing nodes")
	}
	d, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(d), "graph cnet {") {
		t.Fatal("DOT malformed")
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("SVG malformed")
	}
}

func TestRunAsciiOnly(t *testing.T) {
	if err := run(30, 8, 2, 0, "", "", "", true, 40, 12); err != nil {
		t.Fatal(err)
	}
}

func TestRunSummaryOnly(t *testing.T) {
	if err := run(30, 8, 2, 0, "", "", "", false, 40, 12); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsTable(t *testing.T) {
	var sb strings.Builder
	if err := runMetrics(&sb, 40, 8, 1, "icff", 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dynsens_radio_transmissions_total",
		"dynsens_broadcast_runs_total",
		"dynsens_timeslot_max_slot",
		`protocol="ICFF"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}

func TestRunMetricsUnknownProtocol(t *testing.T) {
	var sb strings.Builder
	if err := runMetrics(&sb, 20, 8, 1, "nope", 1); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
