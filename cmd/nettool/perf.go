package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	obsperf "dynsens/internal/obs/perf"
)

// perfUsage is printed for `nettool perf` without a valid subcommand.
const perfUsage = `usage:
  nettool perf report <bench-file>
  nettool perf diff [-warn PCT] [-fail PCT] <old> <new>
  nettool perf import [-o out.json] <raw-go-bench-output>

Bench files are BENCH_*.json (scripts/bench.sh schema) or raw
'go test -bench' output; the format is sniffed. "report" renders one
file — on a cpus=1 host derived ratios print as overhead ratios, never
as speedups. "diff" compares ns/op by benchmark name and exits 1 when
any regression exceeds -fail. "import" converts raw bench output to the
JSON schema, stamping the running host's cpus/gomaxprocs/loadavg.`

// runPerfCmd implements the `nettool perf` subcommand; returns the process
// exit code.
func runPerfCmd(args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, perfUsage)
		return 2
	}
	switch args[0] {
	case "report":
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, perfUsage)
			return 2
		}
		f, err := obsperf.LoadBenchFile(args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		if err := obsperf.WriteReport(os.Stdout, f); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		return 0
	case "diff":
		fs := flag.NewFlagSet("nettool perf diff", flag.ExitOnError)
		warn := fs.Float64("warn", 15, "mark WARN above this ns/op regression percentage")
		fail := fs.Float64("fail", 50, "mark FAIL (and exit 1) above this ns/op regression percentage")
		// ExitOnError: Parse cannot return a non-nil error here.
		_ = fs.Parse(args[1:])
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, perfUsage)
			return 2
		}
		oldF, err := obsperf.LoadBenchFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		newF, err := obsperf.LoadBenchFile(fs.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		failed, err := obsperf.WriteDiff(os.Stdout, oldF, newF, *warn, *fail)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		if failed {
			return 1
		}
		return 0
	case "import":
		fs := flag.NewFlagSet("nettool perf import", flag.ExitOnError)
		out := fs.String("o", "-", "write the JSON bench file here ('-' for stdout)")
		// ExitOnError: Parse cannot return a non-nil error here.
		_ = fs.Parse(args[1:])
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, perfUsage)
			return 2
		}
		f, err := obsperf.LoadBenchFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		f.GeneratedBy = "nettool perf import"
		f.Go = runtime.Version()
		f.CPUs = runtime.NumCPU()
		f.GOMAXPROCS = runtime.GOMAXPROCS(0)
		f.LoadAvg = loadAvg1()
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if *out == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
				return 1
			}
			return 0
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *out)
		return 0
	default:
		fmt.Fprintln(os.Stderr, perfUsage)
		return 2
	}
}

// loadAvg1 returns the host's 1-minute load average, or 0 where
// /proc/loadavg is unavailable (non-Linux hosts).
func loadAvg1() float64 {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0
	}
	return v
}
