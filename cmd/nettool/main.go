// Command nettool builds a network and exports it: as indented JSON
// (deployment geometry, cluster structure, time-slots, group lists) for
// external tooling, or as an ASCII map of the field for a quick look. The
// "metrics" subcommand instead runs one instrumented broadcast and renders
// the resulting metrics snapshot as a table; the "replay" subcommand loads
// a flight recording made with dynsim -record, re-checks the paper's
// invariants offline, and can export Chrome trace-event JSON, render the
// timeline, walk one message's causal span tree, or explain why a node
// never received. The "scenario" subcommand runs declarative .dsn scenario
// files (see docs/scenarios.md): "scenario run" executes one through the
// live stack and exits 1 if any assertion fails, "scenario verify"
// re-evaluates a scenario's assertions offline against an existing
// recording, and "scenario fmt" canonicalizes scenario files. The "perf"
// subcommand works on BENCH_*.json files (or raw `go test -bench`
// output): "perf report" renders one, "perf diff" compares two and exits
// 1 on a regression past -fail, "perf import" converts raw bench output
// to the JSON schema with honest host metadata (see docs/performance.md).
//
// Examples:
//
//	nettool -n 200 -json out.json
//	nettool -n 200 -ascii
//	nettool -n 150 -groups 3 -json - | jq '.nodes[0]'
//	nettool metrics -n 200 -protocol icff
//	nettool replay run.dsfr
//	nettool replay run.dsfr -chrome-trace trace.json
//	nettool replay run.dsfr -why-missed 17
//	nettool scenario run testdata/scenarios/positive/sparse-rgg-icff.dsn
//	nettool scenario run examples/churn/churn.dsn -record churn.dsfr
//	nettool scenario verify examples/churn/churn.dsn churn.dsfr
//	nettool scenario fmt -l testdata/scenarios/positive/*.dsn
//	nettool perf report BENCH_PR7.json
//	nettool perf diff -warn 15 -fail 50 scripts/bench_baseline.json /tmp/bench.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/netio"
	"dynsens/internal/obs"
	"dynsens/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		os.Exit(runScenarioCmd(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "perf" {
		os.Exit(runPerfCmd(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		// Accept both "replay <file> -flags" and "replay -flags <file>".
		fs := flag.NewFlagSet("nettool replay", flag.ExitOnError)
		var (
			chromePath = fs.String("chrome-trace", "", "export Chrome trace-event JSON to this path ('-' for stdout; load in Perfetto)")
			timeline   = fs.Bool("timeline", false, "print the per-round event timeline")
			span       = fs.Int("span", -1, "print the causal span tree of this message seq")
			whyMissed  = fs.Int("why-missed", -1, "explain why this node never received the payload")
		)
		args := os.Args[2:]
		var path string
		if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
			path, args = args[0], args[1:]
		}
		// ExitOnError: Parse cannot return a non-nil error here.
		_ = fs.Parse(args)
		if path == "" && fs.NArg() > 0 {
			path = fs.Arg(0)
		}
		if path == "" {
			fmt.Fprintln(os.Stderr, "nettool: replay needs a recording file (made with dynsim -record)")
			os.Exit(2)
		}
		ok, err := runReplay(os.Stdout, path, *chromePath, *timeline, *span, *whyMissed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		fs := flag.NewFlagSet("nettool metrics", flag.ExitOnError)
		var (
			n        = fs.Int("n", 200, "number of nodes")
			side     = fs.Int("side", 10, "region side in 100 m units")
			seed     = fs.Int64("seed", 1, "deployment seed")
			protocol = fs.String("protocol", "icff", "icff|cff|dfo")
			channels = fs.Int("channels", 1, "radio channels k")
		)
		// ExitOnError: Parse cannot return a non-nil error here.
		_ = fs.Parse(os.Args[2:])
		if err := runMetrics(os.Stdout, *n, *side, *seed, *protocol, *channels); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		n        = flag.Int("n", 200, "number of nodes")
		side     = flag.Int("side", 10, "region side in 100 m units")
		seed     = flag.Int64("seed", 1, "deployment seed")
		groups   = flag.Int("groups", 0, "assign this many random multicast groups")
		jsonPath = flag.String("json", "", "write JSON to this path ('-' for stdout)")
		dotPath  = flag.String("dot", "", "write a Graphviz rendering to this path ('-' for stdout)")
		svgPath  = flag.String("svg", "", "write an SVG rendering to this path ('-' for stdout)")
		ascii    = flag.Bool("ascii", false, "print an ASCII map")
		cols     = flag.Int("cols", 72, "ASCII map width")
		rows     = flag.Int("rows", 28, "ASCII map height")
	)
	flag.Parse()

	if err := run(*n, *side, *seed, *groups, *jsonPath, *dotPath, *svgPath, *ascii, *cols, *rows); err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		os.Exit(1)
	}
}

func run(n, side int, seed int64, groups int, jsonPath, dotPath, svgPath string, ascii bool, cols, rows int) error {
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		return err
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		return err
	}
	if err := net.Verify(); err != nil {
		return err
	}
	if groups > 0 {
		rng := rand.New(rand.NewSource(seed * 7))
		for _, id := range net.CNet().Tree().Nodes() {
			g := 1 + rng.Intn(groups)
			if err := net.JoinGroup(id, g); err != nil {
				return err
			}
		}
	}

	if ascii {
		fmt.Print(netio.AsciiMap(net, d, cols, rows))
	}
	if jsonPath != "" {
		nw, err := netio.Export(net, d)
		if err != nil {
			return err
		}
		out := os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := nw.Write(out); err != nil {
			return err
		}
	}
	if dotPath != "" {
		out := os.Stdout
		if dotPath != "-" {
			f, err := os.Create(dotPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if _, err := out.WriteString(netio.DOT(net, d)); err != nil {
			return err
		}
	}
	if svgPath != "" {
		out := os.Stdout
		if svgPath != "-" {
			f, err := os.Create(svgPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if _, err := out.WriteString(netio.SVG(net, d, 800)); err != nil {
			return err
		}
	}
	if !ascii && jsonPath == "" && dotPath == "" && svgPath == "" {
		st := net.Stats()
		fmt.Printf("built %d nodes: %d clusters, backbone %d (height %d), D=%d d=%d Delta=%d delta=%d\n",
			st.Nodes, st.Clusters, st.BackboneSize, st.BackboneHeight,
			st.DegreeG, st.DegreeBT, st.Delta, st.SmallDelta)
		fmt.Println("use -json or -ascii for output")
	}
	return nil
}

// runMetrics builds a network, runs one fully instrumented broadcast, and
// renders the snapshot as a human-readable table on w.
func runMetrics(w io.Writer, n, side int, seed int64, protocol string, channels int) error {
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		return err
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		return err
	}
	if err := net.Verify(); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	net.CNet().Instrument(reg)
	net.Slots().Record(reg)

	opts := broadcast.Options{Channels: channels, Obs: reg}
	src := graph.NodeID(net.Root())
	switch protocol {
	case "icff":
		_, err = net.Broadcast(src, opts)
	case "cff":
		_, err = net.BroadcastCFF(src, opts)
	case "dfo":
		_, err = net.BroadcastDFO(src, opts)
	default:
		return fmt.Errorf("unknown protocol %q (metrics supports icff|cff|dfo)", protocol)
	}
	if err != nil {
		return err
	}
	return reg.Snapshot().WriteTable(w)
}
