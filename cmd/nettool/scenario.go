package main

import (
	"flag"
	"fmt"
	"os"

	"dynsens/internal/flight"
	"dynsens/internal/scenario"
)

// runScenarioCmd dispatches "nettool scenario run|verify|fmt". Exit codes:
// 0 all assertions held, 1 an assertion failed or a setup error occurred,
// 2 usage error.
func runScenarioCmd(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "nettool: scenario wants a subcommand: run|verify|fmt")
		return 2
	}
	switch args[0] {
	case "run":
		return scenarioRun(args[1:])
	case "verify":
		return scenarioVerify(args[1:])
	case "fmt":
		return scenarioFmt(args[1:])
	}
	fmt.Fprintf(os.Stderr, "nettool: unknown scenario subcommand %q (run|verify|fmt)\n", args[0])
	return 2
}

// scenarioRun executes one .dsn scenario through the live stack.
func scenarioRun(args []string) int {
	fs := flag.NewFlagSet("nettool scenario run", flag.ExitOnError)
	var (
		recordPath = fs.String("record", "", "also write the run as a flight recording to this path")
		workers    = fs.Int("workers", 0, "radio engine shard workers (0 = scenario/default)")
		update     = fs.Bool("update", false, "refresh golden metrics/timeline sections in the file")
		noVerify   = fs.Bool("no-verify", false, "skip the record/replay self-check on flight-capable protocols")
	)
	path, args := splitPath(args)
	// ExitOnError: Parse cannot return a non-nil error here.
	_ = fs.Parse(args)
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "nettool: scenario run needs a .dsn file")
		return 2
	}
	s, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	opts := scenario.RunOptions{Workers: *workers, Update: *update}
	if *recordPath != "" {
		opts.Record = true
	}
	if !*noVerify && scenario.FlightCapable(s.Spec.Protocol) {
		opts.Verify = true
	}
	res, err := scenario.Run(s, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	if err := res.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	if *recordPath != "" {
		if err := os.WriteFile(*recordPath, res.Recording, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		fmt.Printf("recorded %d bytes to %s\n", len(res.Recording), *recordPath)
	}
	if *update && res.Updated != nil {
		if err := os.WriteFile(path, res.Updated, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		fmt.Printf("updated goldens in %s\n", path)
	}
	if !res.Passed() {
		return 1
	}
	return 0
}

// scenarioVerify re-evaluates a scenario's assertions offline against an
// existing flight recording: no simulation runs. Assertions that need
// unrecorded evidence are reported as skipped.
func scenarioVerify(args []string) int {
	fs := flag.NewFlagSet("nettool scenario verify", flag.ExitOnError)
	// ExitOnError: Parse cannot return a non-nil error here.
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "nettool: scenario verify wants <file.dsn> <recording.dsfr>")
		return 2
	}
	s, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	raw, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	rec, err := flight.DecodeBytes(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	res := scenario.EvalRecording(s, rec)
	if err := res.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	// The recording must also pass the generic offline verifier: scenario
	// assertions and structural invariants are one verdict here.
	rep := flight.Verify(rec)
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
		return 1
	}
	if !res.Passed() || !rep.Passed() {
		return 1
	}
	return 0
}

// scenarioFmt rewrites .dsn files into canonical form (or checks them
// with -l, print-only).
func scenarioFmt(args []string) int {
	fs := flag.NewFlagSet("nettool scenario fmt", flag.ExitOnError)
	list := fs.Bool("l", false, "list files that are not canonical instead of rewriting")
	// ExitOnError: Parse cannot return a non-nil error here.
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "nettool: scenario fmt wants one or more .dsn files")
		return 2
	}
	dirty := false
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		s, err := scenario.Parse(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %s: %v\n", path, err)
			return 1
		}
		canon := s.Format()
		if string(canon) == string(raw) {
			continue
		}
		dirty = true
		if *list {
			fmt.Println(path)
			continue
		}
		if err := os.WriteFile(path, canon, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nettool: %v\n", err)
			return 1
		}
		fmt.Printf("reformatted %s\n", path)
	}
	if *list && dirty {
		return 1
	}
	return 0
}

// splitPath peels a leading non-flag argument (the file path) so both
// "scenario run <file> -flags" and "scenario run -flags <file>" work,
// matching the replay subcommand's convention.
func splitPath(args []string) (string, []string) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		return args[0], args[1:]
	}
	return "", args
}
