package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeScenario drops a .dsn file into a temp dir and returns its path.
func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.dsn")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingScenario = `-- spec --
name = cli-pass
n = 30
side = 8
seed = 1
protocol = icff
-- assert --
completed
rounds <= theorem1
`

const failingScenario = `-- spec --
name = cli-fail
n = 30
side = 8
seed = 1
protocol = icff
-- assert --
rounds <= 1
`

func TestScenarioRunExitCodes(t *testing.T) {
	pass := writeScenario(t, passingScenario)
	if code := runScenarioCmd([]string{"run", pass}); code != 0 {
		t.Fatalf("passing scenario exited %d", code)
	}
	fail := writeScenario(t, failingScenario)
	if code := runScenarioCmd([]string{"run", fail}); code != 1 {
		t.Fatalf("failing scenario exited %d, want 1", code)
	}
	if code := runScenarioCmd([]string{"run"}); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
	if code := runScenarioCmd([]string{"bogus"}); code != 2 {
		t.Fatalf("unknown subcommand exited %d, want 2", code)
	}
}

func TestScenarioRecordThenVerify(t *testing.T) {
	pass := writeScenario(t, passingScenario)
	rec := filepath.Join(t.TempDir(), "run.dsfr")
	if code := runScenarioCmd([]string{"run", pass, "-record", rec}); code != 0 {
		t.Fatalf("run -record exited %d", code)
	}
	if _, err := os.Stat(rec); err != nil {
		t.Fatalf("recording not written: %v", err)
	}
	if code := runScenarioCmd([]string{"verify", pass, rec}); code != 0 {
		t.Fatalf("verify exited %d", code)
	}
	// A recording of a different scenario must be rejected.
	other := writeScenario(t, `-- spec --
name = cli-other
n = 40
side = 8
seed = 2
-- assert --
completed
`)
	if code := runScenarioCmd([]string{"verify", other, rec}); code != 1 {
		t.Fatalf("verify against mismatched recording exited %d, want 1", code)
	}
}

func TestScenarioFmt(t *testing.T) {
	// Non-canonical spelling: extra blank lines and comments vanish under fmt.
	messy := writeScenario(t, `-- spec --

# a comment
name = cli-fmt
n = 30
side = 8
-- assert --
completed
`)
	if code := runScenarioCmd([]string{"fmt", "-l", messy}); code != 1 {
		t.Fatalf("fmt -l on messy file exited %d, want 1", code)
	}
	if code := runScenarioCmd([]string{"fmt", messy}); code != 0 {
		t.Fatalf("fmt rewrite exited %d", code)
	}
	if code := runScenarioCmd([]string{"fmt", "-l", messy}); code != 0 {
		t.Fatalf("fmt -l after rewrite exited %d, want 0", code)
	}
}
