// Command experiments regenerates every table and figure of the paper's
// evaluation (and this reproduction's extensions) as text tables.
//
// Usage:
//
//	experiments [-fig all|8|9|10|11|bounds|channels|multicast|robust|reconfig|areas|ablation|slotcond]
//	            [-side 10] [-sizes 100,200,300,400,500] [-seeds 5] [-baseseed 1]
//	            [-quick]
//
// With -quick a small sweep runs in a few seconds; the default parameters
// match the paper's published 10x10-unit curves.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dynsens/internal/expt"
	"dynsens/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment ID or 'all'")
		side     = flag.Int("side", 10, "region side in 100 m units")
		sizes    = flag.String("sizes", "100,200,300,400,500", "comma-separated node counts")
		seeds    = flag.Int("seeds", 5, "deployments per point")
		baseSeed = flag.Int64("baseseed", 1, "base RNG seed")
		quick    = flag.Bool("quick", false, "small fast sweep")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Catalog() {
			fmt.Printf("%-10s %s\n", e.ID, e.Name)
		}
		return
	}

	p := expt.Params{Side: *side, Seeds: *seeds, BaseSeed: *baseSeed}
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", s)
			os.Exit(2)
		}
		p.Sizes = append(p.Sizes, n)
	}
	if *quick {
		p = expt.Quick()
	}

	var selected []expt.Experiment
	if *fig == "all" {
		selected = expt.Catalog()
	} else {
		e, ok := expt.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		selected = []expt.Experiment{e}
	}
	for _, e := range selected {
		t, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", e.Name)
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("expected shape: %s\n\n", e.Notes)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, t); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, id string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + id + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}
