// Command experiments regenerates every table and figure of the paper's
// evaluation (and this reproduction's extensions) as text tables.
//
// Usage:
//
//	experiments [-fig all|8|9|10|11|bounds|channels|multicast|robust|reconfig|areas|ablation|slotcond]
//	            [-side 10] [-sizes 100,200,300,400,500] [-seeds 5] [-baseseed 1]
//	            [-quick] [-workers 0] [-metrics sweep.prom] [-pprof localhost:6060]
//	            [-flight-dir recordings/] [-perf]
//
// With -quick a small sweep runs in a few seconds; the default parameters
// match the paper's published 10x10-unit curves. -metrics dumps sweep
// instrumentation (point counts, per-point wall time) at exit; -pprof
// serves net/http/pprof plus /metrics while the sweep runs.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"dynsens/internal/expt"
	"dynsens/internal/flight"
	"dynsens/internal/obs"
	obsperf "dynsens/internal/obs/perf"
	"dynsens/internal/radio"
	"dynsens/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment ID or 'all'")
		side     = flag.Int("side", 10, "region side in 100 m units")
		sizes    = flag.String("sizes", "100,200,300,400,500", "comma-separated node counts")
		seeds    = flag.Int("seeds", 5, "deployments per point")
		baseSeed = flag.Int64("baseseed", 1, "base RNG seed")
		quick    = flag.Bool("quick", false, "small fast sweep")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		workers  = flag.Int("workers", 0, "concurrent simulation points (0 = GOMAXPROCS)")
		metrics  = flag.String("metrics", "", "write a metrics snapshot here at exit (- for stdout, .json for JSON, else Prometheus text)")
		ppAddr   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address during the sweep")
		flDir    = flag.String("flight-dir", "", "record each point's ICFF run as a flight recording in this directory (replay with: nettool replay)")
		perfOn   = flag.Bool("perf", false, "collect kernel perf introspection across the sweep and print a summary (results unchanged)")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.Catalog() {
			fmt.Printf("%-10s %s\n", e.ID, e.Name)
		}
		return
	}

	p := expt.Params{Side: *side, Seeds: *seeds, BaseSeed: *baseSeed}
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", s)
			os.Exit(2)
		}
		p.Sizes = append(p.Sizes, n)
	}
	if *quick {
		p = expt.Quick()
	}
	p.Workers = *workers

	var reg *obs.Registry
	if *metrics != "" || *ppAddr != "" {
		reg = obs.NewRegistry()
		p.Obs = reg
		p.Now = func() int64 { return time.Now().UnixNano() }
	}
	var perf *radio.Perf
	var sampler *obsperf.Sampler
	if *perfOn {
		perf = radio.NewPerf()
		p.Perf = perf
		if reg != nil {
			sampler = obsperf.NewSampler(reg)
			sampler.Start(time.Second)
		}
	}
	if *flDir != "" {
		if err := os.MkdirAll(*flDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		dir := *flDir
		p.Flight = func(n int, seed int64) *flight.Writer {
			f, err := os.Create(fmt.Sprintf("%s/icff-n%d-s%d.dsfr", dir, n, seed))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: flight recording: %v\n", err)
				return nil
			}
			return flight.NewWriter(f)
		}
	}
	if *ppAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := reg.Snapshot().WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*ppAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof+metrics listening on %s\n", *ppAddr)
	}

	var selected []expt.Experiment
	if *fig == "all" {
		selected = expt.Catalog()
	} else {
		e, ok := expt.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		selected = []expt.Experiment{e}
	}
	for _, e := range selected {
		t, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", e.Name)
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("expected shape: %s\n\n", e.Notes)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, t); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if perf != nil {
		if sampler != nil {
			sampler.Stop()
		}
		snap := perf.Snapshot()
		if reg != nil {
			obsperf.Publish(reg, snap)
		}
		if err := obsperf.WriteSummary(os.Stdout, snap); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if reg != nil && *metrics != "" {
		if err := dumpMetrics(reg, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics writes the final snapshot per the -metrics convention shared
// with dynsim: "-" means Prometheus text on stdout, a .json suffix selects
// JSON, anything else Prometheus text.
func dumpMetrics(reg *obs.Registry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var werr error
	if strings.HasSuffix(path, ".json") {
		werr = snap.WriteJSON(f)
	} else {
		werr = snap.WritePrometheus(f)
	}
	if werr != nil {
		return werr
	}
	return f.Close()
}

func writeCSV(dir, id string, t *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + id + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}
