package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunScenarioExitCodes drives dynsim's -scenario path directly: a
// passing file exits 0, a violated assertion exits 1, and -record still
// writes the recording.
func TestRunScenarioExitCodes(t *testing.T) {
	dir := t.TempDir()
	pass := filepath.Join(dir, "pass.dsn")
	if err := os.WriteFile(pass, []byte(`-- spec --
name = dynsim-pass
n = 30
side = 8
seed = 1
-- assert --
completed
rounds <= theorem1
`), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := filepath.Join(dir, "run.dsfr")
	if code := runScenario(pass, runConfig{RecordPath: rec}); code != 0 {
		t.Fatalf("passing scenario exited %d", code)
	}
	if fi, err := os.Stat(rec); err != nil || fi.Size() == 0 {
		t.Fatalf("recording not written: %v", err)
	}

	fail := filepath.Join(dir, "fail.dsn")
	if err := os.WriteFile(fail, []byte(`-- spec --
name = dynsim-fail
n = 30
side = 8
seed = 1
-- assert --
rounds <= 1
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runScenario(fail, runConfig{}); code != 1 {
		t.Fatalf("failing scenario exited %d, want 1", code)
	}
	if code := runScenario(filepath.Join(dir, "missing.dsn"), runConfig{}); code != 1 {
		t.Fatalf("missing file exited %d, want 1", code)
	}
}
