// Command dynsim runs one simulated scenario: it deploys a sensor network,
// builds the cluster structure, assigns time-slots, runs a broadcast or
// multicast, and prints structural statistics and measured protocol
// metrics.
//
// Examples:
//
//	dynsim -n 300 -side 10 -protocol icff
//	dynsim -n 300 -protocol dfo -failfrac 0.1
//	dynsim -n 200 -protocol multicast -groupfrac 0.2 -channels 4
//	dynsim -n 200 -protocol gather
//	dynsim -n 300 -metrics metrics.prom -events trace.jsonl
//	dynsim -n 500 -pprof localhost:6060
//	dynsim -scenario testdata/scenarios/positive/sparse-rgg-icff.dsn
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"strings"
	"time"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/dist"
	"dynsens/internal/flight"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/netio"
	"dynsens/internal/obs"
	obsperf "dynsens/internal/obs/perf"
	"dynsens/internal/radio"
	"dynsens/internal/scenario"
	"dynsens/internal/workload"
)

func main() {
	var cfg runConfig
	flag.IntVar(&cfg.N, "n", 200, "number of nodes")
	flag.IntVar(&cfg.Side, "side", 10, "region side in 100 m units")
	flag.Int64Var(&cfg.Seed, "seed", 1, "deployment seed")
	flag.StringVar(&cfg.Protocol, "protocol", "icff", "icff|cff|dfo|multicast|gather")
	flag.IntVar(&cfg.Channels, "channels", 1, "radio channels k")
	flag.IntVar(&cfg.Workers, "workers", 0, "radio engine shard workers (0 = auto; results are identical at any value)")
	flag.IntVar(&cfg.Source, "source", 0, "broadcast source node ID")
	flag.Float64Var(&cfg.FailFrac, "failfrac", 0, "fraction of nodes failing mid-broadcast")
	flag.Float64Var(&cfg.GroupFrac, "groupfrac", 0.2, "multicast group membership probability")
	flag.BoolVar(&cfg.Verbose, "v", false, "print per-event trace")
	flag.StringVar(&cfg.MetricsPath, "metrics", "", "write a metrics snapshot here at exit (- for stdout, .json for JSON, else Prometheus text)")
	flag.StringVar(&cfg.EventsPath, "events", "", "write radio events as JSONL here")
	flag.StringVar(&cfg.PprofAddr, "pprof", "", "serve net/http/pprof and /metrics on this address during the run")
	flag.StringVar(&cfg.RecordPath, "record", "", "write a binary flight recording here (replay with: nettool replay)")
	flag.IntVar(&cfg.RecordRing, "record-ring", 0, "bound the recording to the last N radio events (0 = keep all)")
	flag.BoolVar(&cfg.Perf, "perf", false, "collect kernel perf introspection and print a per-phase/per-shard summary (results are byte-identical either way)")
	flag.StringVar(&cfg.Runtime, "runtime", "", "execution runtime: kernel (in-process, default) or dist (message-passing actor nodes; byte-identical results)")
	flag.StringVar(&cfg.DNode, "dnode", "", "path to a dnode binary: run each node as its own OS process (implies -runtime dist; scenario mode only)")
	scenarioPath := flag.String("scenario", "", "run a declarative .dsn scenario file instead (exit 1 if an assertion fails; see docs/scenarios.md)")
	flag.Parse()

	switch cfg.Runtime {
	case "", broadcast.RuntimeKernel, broadcast.RuntimeDist:
	default:
		fmt.Fprintf(os.Stderr, "dynsim: unknown -runtime %q (kernel|dist)\n", cfg.Runtime)
		os.Exit(1)
	}
	if cfg.DNode != "" {
		cfg.Runtime = broadcast.RuntimeDist
		if *scenarioPath == "" {
			fmt.Fprintln(os.Stderr, "dynsim: -dnode needs -scenario (the children reload the scenario file)")
			os.Exit(1)
		}
	}

	if *scenarioPath != "" {
		os.Exit(runScenario(*scenarioPath, cfg))
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
		os.Exit(1)
	}
}

// runScenario executes a .dsn scenario file through the shared scenario
// runner. The file's spec overrides dynsim's topology/protocol flags;
// -workers and -record still apply.
func runScenario(path string, cfg runConfig) int {
	s, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
		return 1
	}
	opts := scenario.RunOptions{Workers: cfg.Workers, Record: cfg.RecordPath != "", Runtime: cfg.Runtime}
	if scenario.FlightCapable(s.Spec.Protocol) {
		opts.Verify = true
	}
	if cfg.DNode != "" {
		opts.Fleet = &dist.ProcFleet{Command: func(id graph.NodeID) *exec.Cmd {
			return exec.Command(cfg.DNode, "-scenario", path, "-node", fmt.Sprint(id))
		}}
	}
	res, err := scenario.Run(s, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
		return 1
	}
	if err := res.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
		return 1
	}
	if cfg.RecordPath != "" {
		if err := os.WriteFile(cfg.RecordPath, res.Recording, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
			return 1
		}
		fmt.Printf("recorded %d bytes to %s\n", len(res.Recording), cfg.RecordPath)
	}
	if !res.Passed() {
		return 1
	}
	return 0
}

// runConfig carries every knob of one scenario; tests build it directly.
type runConfig struct {
	N, Side  int
	Seed     int64
	Protocol string
	Channels int
	// Workers is the radio engine's shard-worker count; 0 lets the engine
	// choose. Purely a wall-clock knob: the simulation is byte-identical
	// at any value.
	Workers   int
	Source    int
	FailFrac  float64
	GroupFrac float64
	Verbose   bool
	// MetricsPath, when non-empty, receives a metrics snapshot at exit:
	// "-" writes Prometheus text to stdout, a ".json" suffix selects JSON,
	// anything else Prometheus text.
	MetricsPath string
	// EventsPath, when non-empty, receives the radio event stream as JSONL.
	EventsPath string
	// PprofAddr, when non-empty, serves net/http/pprof plus a /metrics
	// endpoint on that address for the duration of the run.
	PprofAddr string
	// RecordPath, when non-empty, receives a binary flight recording of
	// the run (topology, churn deltas, every radio event, phase markers);
	// RecordRing > 0 bounds it to the last N radio events.
	RecordPath string
	RecordRing int
	// Perf enables kernel performance introspection: per-phase wall
	// times, shard busy/imbalance, and (with -metrics/-pprof) the
	// dynsens_kernel_* series plus a background runtime sampler. Strictly
	// read-only — simulation output is byte-identical either way.
	Perf bool
	// Runtime selects the execution runtime: "" or "kernel" runs the
	// in-process radio kernel, "dist" hosts each Program as a
	// message-passing actor node behind the round coordinator. Results are
	// byte-identical.
	Runtime string
	// DNode, when non-empty, is the path to a dnode binary: the dist
	// runtime launches one OS process per node (scenario mode only, since
	// the children rebuild their Programs from the scenario file).
	DNode string
}

// wantObs reports whether the scenario needs a metrics registry at all.
func (c runConfig) wantObs() bool {
	return c.MetricsPath != "" || c.PprofAddr != ""
}

// pprofMux builds the profiling mux by hand: the binary deliberately avoids
// http.DefaultServeMux so -pprof exposes exactly pprof and /metrics.
func pprofMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// writeMetrics dumps the final snapshot per the -metrics convention.
func writeMetrics(reg *obs.Registry, path string) error {
	snap := reg.Snapshot()
	if path == "-" {
		return snap.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// flightDelta converts a live cnet churn delta to its recorded form.
func flightDelta(d cnet.Delta) flight.Delta {
	kind := flight.DeltaMoveIn
	switch d.Kind {
	case cnet.DeltaMoveOut:
		kind = flight.DeltaMoveOut
	case cnet.DeltaCrash:
		kind = flight.DeltaCrash
	}
	return flight.Delta{
		Kind: kind, Node: d.Node, Peer: flight.NoParent,
		Reinserted: d.Reinserted, Dropped: d.Dropped, RootChanged: d.RootChanged,
	}
}

func run(cfg runConfig) error {
	d, err := workload.IncrementalConnected(workload.PaperConfig(cfg.Seed, cfg.Side, cfg.N))
	if err != nil {
		return err
	}
	var fw *flight.Writer
	coreCfg := core.Config{}
	if cfg.RecordPath != "" {
		if cfg.Protocol == "gather" {
			return fmt.Errorf("-record supports broadcast protocols, not gather")
		}
		rf, err := os.Create(cfg.RecordPath)
		if err != nil {
			return err
		}
		if cfg.RecordRing > 0 {
			fw = flight.NewRingWriter(rf, cfg.RecordRing)
		} else {
			fw = flight.NewWriter(rf)
		}
		fw.WriteHeader(flight.Header{
			Seed: cfg.Seed, N: cfg.N, Side: cfg.Side, Channels: cfg.Channels,
			Source: graph.NodeID(cfg.Source), Protocol: strings.ToUpper(cfg.Protocol),
			RingLimit: cfg.RecordRing,
		})
		coreCfg.DeltaHook = func(d cnet.Delta) { fw.WriteDelta(flightDelta(d)) }
	}
	net, err := core.Build(d.Graph(), coreCfg)
	if err != nil {
		return err
	}
	if err := net.Verify(); err != nil {
		return err
	}
	if fw != nil {
		netio.RecordTopology(fw, net)
	}

	var reg *obs.Registry
	if cfg.wantObs() {
		reg = obs.NewRegistry()
		net.CNet().Instrument(reg)
		net.Slots().Record(reg)
	}
	if cfg.PprofAddr != "" {
		srv := &http.Server{Addr: cfg.PprofAddr, Handler: pprofMux(reg)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dynsim: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof+metrics listening on %s\n", cfg.PprofAddr)
	}

	st := net.Stats()
	fmt.Printf("network: %d nodes on %dx%d units (range 50 m)\n", st.Nodes, cfg.Side, cfg.Side)
	fmt.Printf("structure: clusters=%d gateways=%d members=%d height=%d\n",
		st.Clusters, st.Gateways, st.Members, st.Height)
	fmt.Printf("backbone: size=%d height=%d\n", st.BackboneSize, st.BackboneHeight)
	fmt.Printf("degrees/slots: D=%d d=%d Delta=%d delta=%d (Lemma 3 bounds %d / %d)\n",
		st.DegreeG, st.DegreeBT, st.Delta, st.SmallDelta, st.BoundL, st.BoundB)

	if cfg.Runtime == broadcast.RuntimeDist && cfg.Protocol == "gather" {
		return fmt.Errorf("-runtime dist supports broadcast protocols, not gather")
	}
	opts := broadcast.Options{Channels: cfg.Channels, Workers: cfg.Workers, Obs: reg, Runtime: cfg.Runtime}
	var perf *radio.Perf
	var sampler *obsperf.Sampler
	if cfg.Perf {
		perf = radio.NewPerf()
		opts.Perf = perf
		if reg != nil {
			sampler = obsperf.NewSampler(reg)
			sampler.Start(250 * time.Millisecond)
		}
	}
	if cfg.Verbose {
		opts.Trace = func(ev radio.Event) {
			switch ev.Kind {
			case radio.EvTransmit:
				fmt.Printf("  r%-4d tx   node %d ch %d\n", ev.Round, ev.Node, ev.Channel)
			case radio.EvDeliver:
				fmt.Printf("  r%-4d rx   node %d <- %d ch %d\n", ev.Round, ev.Node, ev.Peer, ev.Channel)
			case radio.EvCollision:
				fmt.Printf("  r%-4d coll node %d ch %d\n", ev.Round, ev.Node, ev.Channel)
			case radio.EvNodeFail:
				fmt.Printf("  r%-4d DIED node %d\n", ev.Round, ev.Node)
			}
		}
	}
	var eventsFile *os.File
	if cfg.EventsPath != "" {
		eventsFile, err = os.Create(cfg.EventsPath)
		if err != nil {
			return err
		}
		defer eventsFile.Close()
		sink := obs.NewEventSink(eventsFile)
		opts.Trace = obs.ChainHooks(opts.Trace, sink.Hook())
		defer func() {
			if serr := sink.Err(); serr != nil {
				fmt.Fprintf(os.Stderr, "dynsim: event sink: %v\n", serr)
			} else {
				fmt.Printf("wrote %d events to %s\n", sink.Events(), cfg.EventsPath)
			}
		}()
	}
	if cfg.FailFrac > 0 {
		horizon := 2 * (st.BackboneSize - 1)
		if horizon < 1 {
			horizon = 1
		}
		for _, f := range workload.FailureTrace(net.Graph(), net.Root(), cfg.FailFrac, horizon, cfg.Seed*17) {
			opts.Failures = append(opts.Failures, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
		}
		fmt.Printf("injected %d node failures\n", len(opts.Failures))
	}
	if fw != nil {
		for _, f := range opts.Failures {
			fw.WriteDelta(flight.Delta{
				Kind: flight.DeltaNodeFail, Node: f.Node, Peer: flight.NoParent, Round: f.Round,
			})
		}
		opts.Flight = fw
	}

	src := graph.NodeID(cfg.Source)
	var m broadcast.Metrics
	switch cfg.Protocol {
	case "icff":
		m, err = net.Broadcast(src, opts)
	case "cff":
		m, err = net.BroadcastCFF(src, opts)
	case "dfo":
		m, err = net.BroadcastDFO(src, opts)
	case "gather":
		values := make(map[graph.NodeID]int64)
		var want int64
		for _, id := range net.CNet().Tree().Nodes() {
			values[id] = int64(id) + 1
			want += int64(id) + 1
		}
		var gfails []gather.Failure
		for _, f := range opts.Failures {
			gfails = append(gfails, gather.Failure{Node: f.Node, Round: f.Round})
		}
		gm, err := net.Gather(values, gather.Options{Failures: gfails, Workers: cfg.Workers, Perf: perf})
		if err != nil {
			return err
		}
		fmt.Println(gm)
		fmt.Printf("expected sum %d; reporting fraction %.3f\n", want,
			float64(gm.Reporting)/float64(gm.Nodes))
		if err := finishPerf(perf, sampler, reg); err != nil {
			return err
		}
		return finishMetrics(reg, cfg)
	case "multicast":
		rng := rand.New(rand.NewSource(cfg.Seed * 31))
		joined := 0
		for _, id := range net.CNet().Tree().Nodes() {
			if rng.Float64() < cfg.GroupFrac {
				if err := net.JoinGroup(id, 1); err != nil {
					return err
				}
				joined++
			}
		}
		if joined == 0 {
			if err := net.JoinGroup(net.Root(), 1); err != nil {
				return err
			}
			joined = 1
		}
		fmt.Printf("multicast group 1: %d members\n", joined)
		m, err = net.Multicast(1, src, opts)
	default:
		return fmt.Errorf("unknown protocol %q", cfg.Protocol)
	}
	if err != nil {
		return err
	}
	fmt.Println(m)
	fmt.Printf("delivery ratio: %.3f\n", m.DeliveryRatio())
	if fw != nil {
		if err := fw.Close(); err != nil {
			return fmt.Errorf("flight recording: %w", err)
		}
		if n := fw.Dropped(); n > 0 {
			fmt.Printf("wrote flight recording to %s (ring mode, %d oldest events dropped)\n", cfg.RecordPath, n)
		} else {
			fmt.Printf("wrote flight recording to %s\n", cfg.RecordPath)
		}
	}
	if err := finishPerf(perf, sampler, reg); err != nil {
		return err
	}
	return finishMetrics(reg, cfg)
}

// finishPerf stops the runtime sampler, publishes the perf collector into
// the registry (so the -metrics dump carries the dynsens_kernel_* series)
// and prints the per-phase summary table.
func finishPerf(perf *radio.Perf, sampler *obsperf.Sampler, reg *obs.Registry) error {
	if perf == nil {
		return nil
	}
	if sampler != nil {
		sampler.Stop()
	}
	snap := perf.Snapshot()
	if reg != nil {
		obsperf.Publish(reg, snap)
	}
	return obsperf.WriteSummary(os.Stdout, snap)
}

// finishMetrics writes the -metrics dump, if requested.
func finishMetrics(reg *obs.Registry, cfg runConfig) error {
	if reg == nil || cfg.MetricsPath == "" {
		return nil
	}
	if err := writeMetrics(reg, cfg.MetricsPath); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if cfg.MetricsPath != "-" {
		fmt.Printf("wrote metrics snapshot to %s\n", cfg.MetricsPath)
	}
	return nil
}
