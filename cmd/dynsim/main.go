// Command dynsim runs one simulated scenario: it deploys a sensor network,
// builds the cluster structure, assigns time-slots, runs a broadcast or
// multicast, and prints structural statistics and measured protocol
// metrics.
//
// Examples:
//
//	dynsim -n 300 -side 10 -protocol icff
//	dynsim -n 300 -protocol dfo -failfrac 0.1
//	dynsim -n 200 -protocol multicast -groupfrac 0.2 -channels 4
//	dynsim -n 200 -protocol gather
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 200, "number of nodes")
		side      = flag.Int("side", 10, "region side in 100 m units")
		seed      = flag.Int64("seed", 1, "deployment seed")
		protocol  = flag.String("protocol", "icff", "icff|cff|dfo|multicast|gather")
		channels  = flag.Int("channels", 1, "radio channels k")
		source    = flag.Int("source", 0, "broadcast source node ID")
		failFrac  = flag.Float64("failfrac", 0, "fraction of nodes failing mid-broadcast")
		groupFrac = flag.Float64("groupfrac", 0.2, "multicast group membership probability")
		verbose   = flag.Bool("v", false, "print per-event trace")
	)
	flag.Parse()

	if err := run(*n, *side, *seed, *protocol, *channels, *source, *failFrac, *groupFrac, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "dynsim: %v\n", err)
		os.Exit(1)
	}
}

func run(n, side int, seed int64, protocol string, channels, source int, failFrac, groupFrac float64, verbose bool) error {
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		return err
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		return err
	}
	if err := net.Verify(); err != nil {
		return err
	}

	st := net.Stats()
	fmt.Printf("network: %d nodes on %dx%d units (range 50 m)\n", st.Nodes, side, side)
	fmt.Printf("structure: clusters=%d gateways=%d members=%d height=%d\n",
		st.Clusters, st.Gateways, st.Members, st.Height)
	fmt.Printf("backbone: size=%d height=%d\n", st.BackboneSize, st.BackboneHeight)
	fmt.Printf("degrees/slots: D=%d d=%d Delta=%d delta=%d (Lemma 3 bounds %d / %d)\n",
		st.DegreeG, st.DegreeBT, st.Delta, st.SmallDelta, st.BoundL, st.BoundB)

	opts := broadcast.Options{Channels: channels}
	if verbose {
		opts.Trace = func(ev radio.Event) {
			switch ev.Kind {
			case radio.EvTransmit:
				fmt.Printf("  r%-4d tx   node %d ch %d\n", ev.Round, ev.Node, ev.Channel)
			case radio.EvDeliver:
				fmt.Printf("  r%-4d rx   node %d <- %d ch %d\n", ev.Round, ev.Node, ev.Peer, ev.Channel)
			case radio.EvCollision:
				fmt.Printf("  r%-4d coll node %d ch %d\n", ev.Round, ev.Node, ev.Channel)
			case radio.EvNodeFail:
				fmt.Printf("  r%-4d DIED node %d\n", ev.Round, ev.Node)
			}
		}
	}
	if failFrac > 0 {
		horizon := 2 * (st.BackboneSize - 1)
		if horizon < 1 {
			horizon = 1
		}
		for _, f := range workload.FailureTrace(net.Graph(), net.Root(), failFrac, horizon, seed*17) {
			opts.Failures = append(opts.Failures, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
		}
		fmt.Printf("injected %d node failures\n", len(opts.Failures))
	}

	src := graph.NodeID(source)
	var m broadcast.Metrics
	switch protocol {
	case "icff":
		m, err = net.Broadcast(src, opts)
	case "cff":
		m, err = net.BroadcastCFF(src, opts)
	case "dfo":
		m, err = net.BroadcastDFO(src, opts)
	case "gather":
		values := make(map[graph.NodeID]int64)
		var want int64
		for _, id := range net.CNet().Tree().Nodes() {
			values[id] = int64(id) + 1
			want += int64(id) + 1
		}
		var gfails []gather.Failure
		for _, f := range opts.Failures {
			gfails = append(gfails, gather.Failure{Node: f.Node, Round: f.Round})
		}
		gm, err := net.Gather(values, gather.Options{Failures: gfails})
		if err != nil {
			return err
		}
		fmt.Println(gm)
		fmt.Printf("expected sum %d; reporting fraction %.3f\n", want,
			float64(gm.Reporting)/float64(gm.Nodes))
		return nil
	case "multicast":
		rng := rand.New(rand.NewSource(seed * 31))
		joined := 0
		for _, id := range net.CNet().Tree().Nodes() {
			if rng.Float64() < groupFrac {
				if err := net.JoinGroup(id, 1); err != nil {
					return err
				}
				joined++
			}
		}
		if joined == 0 {
			if err := net.JoinGroup(net.Root(), 1); err != nil {
				return err
			}
			joined = 1
		}
		fmt.Printf("multicast group 1: %d members\n", joined)
		m, err = net.Multicast(1, src, opts)
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}
	if err != nil {
		return err
	}
	fmt.Println(m)
	fmt.Printf("delivery ratio: %.3f\n", m.DeliveryRatio())
	return nil
}
