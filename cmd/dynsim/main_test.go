package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/flight"
	"dynsens/internal/obs"
	"dynsens/internal/workload"
)

// cfg returns the shared small scenario, customizable per test.
func cfg(proto string) runConfig {
	return runConfig{N: 60, Side: 8, Seed: 1, Protocol: proto, Channels: 1, GroupFrac: 0.3}
}

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"icff", "cff", "dfo", "multicast", "gather"} {
		if err := run(cfg(proto)); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestRunWithFailuresAndChannels(t *testing.T) {
	c := cfg("icff")
	c.Seed, c.Channels, c.FailFrac, c.GroupFrac = 2, 4, 0.1, 0
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	c.Protocol, c.Channels = "dfo", 1
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseTrace(t *testing.T) {
	c := cfg("icff")
	c.N, c.Seed, c.GroupFrac, c.Verbose = 20, 3, 0, true
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	c := cfg("nope")
	c.N = 20
	if err := run(c); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunNonRootSource(t *testing.T) {
	c := cfg("icff")
	c.N, c.Source, c.GroupFrac = 40, 17, 0
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

// parseProm reads a Prometheus text file into series-id -> value, skipping
// comments and histogram sample lines.
func parseProm(t *testing.T, path string) map[string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsReconcile is the acceptance check: the -metrics Prometheus
// dump of a run must agree with what the library reports for the same
// deployment and options.
func TestMetricsReconcile(t *testing.T) {
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	eventsPath := filepath.Join(dir, "events.jsonl")

	c := cfg("icff")
	c.MetricsPath, c.EventsPath = promPath, eventsPath
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	got := parseProm(t, promPath)

	// Re-run the identical scenario through the library.
	d, err := workload.IncrementalConnected(workload.PaperConfig(c.Seed, c.Side, c.N))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m, err := net.Broadcast(net.Root(), broadcast.Options{Channels: c.Channels, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	check := func(series string, want float64) {
		t.Helper()
		v, ok := got[series]
		if !ok {
			t.Errorf("series %s missing from %s", series, promPath)
			return
		}
		if v != want {
			t.Errorf("%s = %v, want %v", series, v, want)
		}
	}
	lbl := `{protocol="ICFF"}`
	check(obs.MetricRadioTransmissions+lbl, float64(m.Transmissions))
	check(obs.MetricRadioCollisions+lbl, float64(m.Collisions))
	check(broadcast.MetricBroadcastRuns+lbl, 1)
	check(broadcast.MetricBroadcastDelivered+lbl, float64(m.Received))
	check(broadcast.MetricBroadcastAudience+lbl, float64(m.Audience))

	// The dump and the re-run used independent registries; their full
	// radio counter sets must also agree with each other.
	snap := reg.Snapshot()
	for _, name := range []string{obs.MetricRadioDeliveries, obs.MetricRadioLosses, obs.MetricRadioNodeFailures} {
		want, ok := snap.CounterValue(name, obs.L("protocol", "ICFF"))
		if !ok {
			t.Fatalf("library registry missing %s", name)
		}
		check(name+lbl, float64(want))
	}

	// The JSONL sink must have captured events.
	ev, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(ev)), "\n") + 1
	if lines < m.Transmissions {
		t.Errorf("event sink has %d lines, want >= %d transmissions", lines, m.Transmissions)
	}
	for _, l := range strings.SplitN(string(ev), "\n", 2)[:1] {
		if !strings.HasPrefix(l, `{"eseq":`) {
			t.Errorf("first event line not JSONL: %q", l)
		}
	}
}

// TestRecordIsDeterministic is the exact-replay acceptance check: two runs
// of the same scenario must produce byte-identical flight recordings (same
// per-round event sequence, same sequence numbers), and the recording must
// decode and pass the offline verifier.
func TestRecordIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.dsfr"), filepath.Join(dir, "b.dsfr")

	c := cfg("icff")
	c.FailFrac, c.Seed = 0.2, 2
	c.RecordPath = a
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	c.RecordPath = b
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("recordings of identical runs differ (%d vs %d bytes)", len(ba), len(bb))
	}

	rec, err := flight.DecodeBytes(ba)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 || len(rec.Nodes) != c.N || rec.Footer == nil {
		t.Fatalf("recording incomplete: %d events, %d nodes, footer %v",
			len(rec.Events), len(rec.Nodes), rec.Footer)
	}
	if rep := flight.Verify(rec); !rep.Passed() {
		var sb strings.Builder
		_ = rep.Write(&sb)
		t.Fatalf("verifier failed on dynsim recording:\n%s", sb.String())
	}
}

// TestRecordRing covers the bounded-ring flag and the protocols that reach
// the recorder through different planners.
func TestRecordRing(t *testing.T) {
	for _, proto := range []string{"icff", "cff", "dfo", "multicast"} {
		c := cfg(proto)
		c.RecordPath = filepath.Join(t.TempDir(), "r.dsfr")
		c.RecordRing = 10
		if err := run(c); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		raw, err := os.ReadFile(c.RecordPath)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := flight.DecodeBytes(raw)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if rec.Dropped() == 0 || len(rec.Events) != 10 {
			t.Fatalf("%s: ring kept %d events with %d dropped", proto, len(rec.Events), rec.Dropped())
		}
		if rep := flight.Verify(rec); !rep.Passed() {
			t.Fatalf("%s: verifier failed on ring recording", proto)
		}
	}
}

func TestRecordRejectsGather(t *testing.T) {
	c := cfg("gather")
	c.RecordPath = filepath.Join(t.TempDir(), "g.dsfr")
	if err := run(c); err == nil {
		t.Fatal("gather accepted a -record path")
	}
}

func TestMetricsJSONAndStdout(t *testing.T) {
	c := cfg("dfo")
	c.MetricsPath = filepath.Join(t.TempDir(), "m.json")
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(c.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(b)), "{") {
		t.Errorf("JSON dump does not look like JSON: %q", b[:min(len(b), 40)])
	}
	c.MetricsPath = "-"
	if err := run(c); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
