package main

import "testing"

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"icff", "cff", "dfo", "multicast", "gather"} {
		if err := run(60, 8, 1, proto, 1, 0, 0, 0.3, false); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestRunWithFailuresAndChannels(t *testing.T) {
	if err := run(60, 8, 2, "icff", 4, 0, 0.1, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(60, 8, 2, "dfo", 1, 0, 0.1, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerboseTrace(t *testing.T) {
	if err := run(20, 8, 3, "icff", 1, 0, 0, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run(20, 8, 1, "nope", 1, 0, 0, 0, false); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunNonRootSource(t *testing.T) {
	if err := run(40, 8, 1, "icff", 1, 17, 0, 0, false); err != nil {
		t.Fatal(err)
	}
}
